//! Estimate post-processing: projections that exploit public knowledge
//! about the answer space.
//!
//! LDP estimates are unbiased but unconstrained: individual frequencies
//! can be negative and the estimated CDF can be locally non-monotone.
//! Since any data-independent post-processing preserves differential
//! privacy for free, an aggregator can project estimates onto the feasible
//! set before answering queries:
//!
//! * [`project_nonnegative_simplex`] — the standard simplex projection
//!   (Euclidean projection onto `{f ≥ 0, Σf = total}`), useful when the
//!   per-item frequencies themselves are reported.
//! * [`isotonic_cdf`] — least-squares monotone regression of the estimated
//!   CDF by the Pool-Adjacent-Violators Algorithm (PAVA), which cleans up
//!   prefix/quantile queries (§4.7) without touching interior-range
//!   unbiasedness more than necessary.
//!
//! These refinements go beyond the paper (which stops at constrained
//! inference) but compose with every mechanism here, and the integration
//! tests verify they never make quantile answers worse in aggregate.

use crate::estimate::FrequencyEstimate;

/// Euclidean projection of `freqs` onto the scaled simplex
/// `{f : f ≥ 0, Σ f = total}` (Duchi et al.'s `O(D log D)` algorithm).
///
/// # Panics
///
/// Panics on an empty input or a negative total.
#[must_use]
pub fn project_nonnegative_simplex(freqs: &[f64], total: f64) -> Vec<f64> {
    assert!(!freqs.is_empty(), "nothing to project");
    assert!(total >= 0.0, "simplex total must be non-negative");
    let mut sorted: Vec<f64> = freqs.to_vec();
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("no NaNs in estimates"));
    // Find the largest k with sorted[k] - (cumsum(k+1) - total)/(k+1) > 0.
    let mut cumsum = 0.0;
    let mut theta = 0.0;
    for (k, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let candidate = (cumsum - total) / (k + 1) as f64;
        if v - candidate > 0.0 {
            theta = candidate;
        }
    }
    freqs.iter().map(|&f| (f - theta).max(0.0)).collect()
}

/// Least-squares monotone (non-decreasing) regression via PAVA, `O(D)`.
///
/// Input is an arbitrary sequence (an estimated CDF); output is the
/// closest non-decreasing sequence in `L2`.
#[must_use]
pub fn isotonic_regression(values: &[f64]) -> Vec<f64> {
    // Blocks of (mean, weight) merged whenever a violation appears.
    let mut means: Vec<f64> = Vec::with_capacity(values.len());
    let mut weights: Vec<f64> = Vec::with_capacity(values.len());
    for &v in values {
        let mut mean = v;
        let mut weight = 1.0;
        while let Some(&last) = means.last() {
            if last <= mean {
                break;
            }
            let w = weights.pop().expect("parallel stacks");
            let m = means.pop().expect("parallel stacks");
            mean = (mean * weight + m * w) / (weight + w);
            weight += w;
        }
        means.push(mean);
        weights.push(weight);
    }
    let mut out = Vec::with_capacity(values.len());
    for (m, w) in means.iter().zip(&weights) {
        for _ in 0..*w as usize {
            out.push(*m);
        }
    }
    out
}

/// Rebuilds a [`FrequencyEstimate`] whose CDF is the isotonic projection
/// of the input estimate's CDF, clamped into `[0, total]` and pinned to
/// `total` at the right end.
///
/// Frequencies become the differences of the cleaned CDF, hence are
/// non-negative and sum exactly to `total` — monotone prefix queries and
/// well-defined quantiles by construction.
#[must_use]
pub fn isotonic_cdf(estimate: &FrequencyEstimate, total: f64) -> FrequencyEstimate {
    let d = estimate.frequencies().len();
    let mut cdf = Vec::with_capacity(d);
    let mut acc = 0.0;
    for &f in estimate.frequencies() {
        acc += f;
        cdf.push(acc);
    }
    let mut mono = isotonic_regression(&cdf);
    for c in &mut mono {
        *c = c.clamp(0.0, total);
    }
    mono[d - 1] = total;
    // Differences of a monotone CDF are the cleaned frequencies.
    let mut freqs = Vec::with_capacity(d);
    let mut prev = 0.0;
    for &c in &mono {
        freqs.push((c - prev).max(0.0));
        prev = c;
    }
    FrequencyEstimate::new(freqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::RangeEstimate;

    const EPS: f64 = 1e-10;

    #[test]
    fn simplex_projection_fixes_negatives_and_total() {
        let raw = vec![0.5, -0.1, 0.4, 0.3];
        let proj = project_nonnegative_simplex(&raw, 1.0);
        assert!(proj.iter().all(|&f| f >= 0.0));
        assert!((proj.iter().sum::<f64>() - 1.0).abs() < EPS);
    }

    #[test]
    fn simplex_projection_is_identity_on_feasible_points() {
        let raw = vec![0.25, 0.25, 0.25, 0.25];
        let proj = project_nonnegative_simplex(&raw, 1.0);
        for (a, b) in raw.iter().zip(&proj) {
            assert!((a - b).abs() < EPS);
        }
    }

    #[test]
    fn simplex_projection_moves_minimally() {
        // Projection must be closer to the input than any other feasible
        // point we try.
        let raw = vec![0.9, 0.4, -0.3];
        let proj = project_nonnegative_simplex(&raw, 1.0);
        let dist =
            |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>();
        let d_proj = dist(&raw, &proj);
        for other in [
            vec![1.0, 0.0, 0.0],
            vec![0.4, 0.3, 0.3],
            vec![0.7, 0.3, 0.0],
        ] {
            assert!(d_proj <= dist(&raw, &other) + EPS, "beaten by {other:?}");
        }
    }

    #[test]
    fn isotonic_regression_basics() {
        assert_eq!(isotonic_regression(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let fixed = isotonic_regression(&[3.0, 1.0]);
        assert!((fixed[0] - 2.0).abs() < EPS && (fixed[1] - 2.0).abs() < EPS);
        // Classic example: pooled block in the middle.
        let fixed = isotonic_regression(&[1.0, 4.0, 2.0, 5.0]);
        assert!(fixed.windows(2).all(|w| w[0] <= w[1] + EPS));
        assert!((fixed[1] - 3.0).abs() < EPS && (fixed[2] - 3.0).abs() < EPS);
    }

    #[test]
    fn isotonic_regression_preserves_mean() {
        let v = [0.4, 0.1, 0.9, 0.3, 0.35, 0.2];
        let m = isotonic_regression(&v);
        let mean_in: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let mean_out: f64 = m.iter().sum::<f64>() / m.len() as f64;
        assert!((mean_in - mean_out).abs() < EPS);
        assert!(m.windows(2).all(|w| w[0] <= w[1] + EPS));
    }

    #[test]
    fn isotonic_cdf_yields_valid_distribution() {
        // A noisy estimate with negative cells and a non-monotone CDF.
        let est = FrequencyEstimate::new(vec![0.3, -0.15, 0.4, 0.05, 0.5, -0.1]);
        let clean = isotonic_cdf(&est, 1.0);
        let f = clean.frequencies();
        assert!(f.iter().all(|&x| x >= -EPS));
        assert!((f.iter().sum::<f64>() - 1.0).abs() < EPS);
        let cdf = clean.cdf();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + EPS));
        assert!((clean.prefix(5) - 1.0).abs() < EPS);
    }

    #[test]
    fn isotonic_cdf_keeps_good_estimates_close() {
        let est = FrequencyEstimate::new(vec![0.1, 0.2, 0.3, 0.4]);
        let clean = isotonic_cdf(&est, 1.0);
        for z in 0..4 {
            assert!((clean.point(z) - est.point(z)).abs() < EPS);
        }
    }

    #[test]
    #[should_panic(expected = "nothing to project")]
    fn rejects_empty_projection() {
        let _ = project_nonnegative_simplex(&[], 1.0);
    }
}
