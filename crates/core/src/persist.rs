//! Exact serialization of server state — the substrate of durable
//! storage.
//!
//! Every mechanism server is a pure function of (a) its immutable
//! configuration and (b) the integer sufficient statistics its oracles
//! have accumulated. A checkpoint therefore needs to serialize only (b):
//! restoring those integers into a *fresh server built from the same
//! configuration* reproduces the original state bit for bit — estimates,
//! report counts, merge behavior, everything. [`PersistableServer`]
//! captures that contract for all six mechanisms, the same way
//! [`MergeableServer`] captures exact merging.
//!
//! ## Format
//!
//! The encoding is deliberately minimal and prototype-driven: no domain
//! sizes, level counts, or probabilities are written, because the
//! restoring side already knows them from its prototype. What is written:
//!
//! ```text
//! server_state  := oracle_state × (number of oracles, from prototype)
//! oracle_state  := tagged for AnyOracle:  tag(1B)  body
//!                  untagged for Oue/Hrr:  body
//! body          := reports:varint  stat:varint × domain        (counts)
//!                | reports:varint  zigzag:varint × domain      (±1 sums)
//! ```
//!
//! Decoding is *total*: truncated or inconsistent bytes produce
//! [`RangeError::CorruptState`], never a panic, and every allocation is
//! sized by the prototype (never by attacker-controlled lengths). On any
//! error the server under restoration must be discarded — partial
//! restores are not rolled back.

use ldp_freq_oracle::{AnyOracle, Hrr, Oue, PointOracle};

use crate::error::RangeError;
use crate::flat::FlatServer;
use crate::haar::calibration::HaarOueServer;
use crate::haar::HaarHrrServer;
use crate::hh::split::HhSplitServer;
use crate::hh::HhServer;
use crate::mergeable::MergeableServer;
use crate::multidim::Hh2dServer;

/// Oracle kind tags, matching the service crate's wire-format oracle tags
/// so one set of constants describes both encodings.
const TAG_OUE: u8 = 0;
const TAG_OLH: u8 = 1;
const TAG_HRR: u8 = 2;
const TAG_SUE: u8 = 3;

/// Appends one LEB128 varint (at most 10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends one signed value as a zigzag-encoded varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Bounds-checked cursor over persisted state bytes.
///
/// Every read is total: running past the end or hitting a malformed
/// varint yields [`RangeError::CorruptState`], never a panic.
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a buffer, starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails at end of buffer.
    pub fn u8(&mut self) -> Result<u8, RangeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(RangeError::CorruptState("truncated state bytes"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads one LEB128 varint.
    ///
    /// # Errors
    ///
    /// Fails on truncation or 64-bit overflow.
    pub fn varint(&mut self) -> Result<u64, RangeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            if shift == 63 && bits > 1 {
                return Err(RangeError::CorruptState("varint overflows 64 bits"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(RangeError::CorruptState("varint overflows 64 bits"))
    }

    /// Reads one zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// As [`StateReader::varint`].
    pub fn ivarint(&mut self) -> Result<i64, RangeError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

/// A server whose accumulated state can be serialized and later restored
/// bit-identically into a fresh server of the same configuration.
///
/// # Contract
///
/// For any server `s` and a prototype `p` built from the same
/// configuration (`p` freshly constructed, no reports absorbed):
///
/// ```text
/// let mut bytes = Vec::new();
/// s.persist_state(&mut bytes);
/// let mut r = p.clone();
/// r.restore_state(&mut StateReader::new(&bytes))?;
/// // r is bit-identical to s: same num_reports, same estimates
/// // (to_bits() equality), same merge/subtract behavior.
/// ```
///
/// `restore_state` reads exactly the bytes `persist_state` wrote and
/// *replaces* the accumulated statistics (it does not merge). It
/// validates the bytes against the prototype's shape and the statistics'
/// integer invariants; on error the server must be discarded, since a
/// multi-oracle restore is not rolled back.
pub trait PersistableServer: MergeableServer {
    /// Appends this server's complete mutable state to `out`.
    fn persist_state(&self, out: &mut Vec<u8>);

    /// Replaces this server's state with previously persisted bytes.
    ///
    /// # Errors
    ///
    /// [`RangeError::CorruptState`] on truncated, misshapen, or
    /// impossible statistics. The server is in an unspecified (but
    /// memory-safe) state after an error — discard it.
    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError>;
}

// --- oracle codecs -----------------------------------------------------

fn put_counts(out: &mut Vec<u8>, reports: u64, counts: &[u64]) {
    put_varint(out, reports);
    for &c in counts {
        put_varint(out, c);
    }
}

fn get_counts(r: &mut StateReader<'_>, n: usize) -> Result<(u64, Vec<u64>), RangeError> {
    let reports = r.varint()?;
    // `n` comes from the prototype's own configuration, never from the
    // bytes, so this allocation is bounded by state we already hold.
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.varint()?);
    }
    Ok((reports, counts))
}

fn persist_oue(out: &mut Vec<u8>, oracle: &Oue) {
    put_counts(out, oracle.num_reports(), oracle.counts());
}

fn restore_oue(r: &mut StateReader<'_>, oracle: &mut Oue) -> Result<(), RangeError> {
    let (reports, counts) = get_counts(r, oracle.domain())?;
    oracle
        .load_state(counts, reports)
        .map_err(|_| RangeError::CorruptState("impossible OUE counts"))
}

fn persist_hrr(out: &mut Vec<u8>, oracle: &Hrr) {
    put_varint(out, oracle.num_reports());
    for &s in oracle.sums() {
        put_ivarint(out, s);
    }
}

fn restore_hrr(r: &mut StateReader<'_>, oracle: &mut Hrr) -> Result<(), RangeError> {
    let reports = r.varint()?;
    let mut sums = Vec::with_capacity(oracle.domain());
    for _ in 0..oracle.domain() {
        sums.push(r.ivarint()?);
    }
    oracle
        .load_state(sums, reports)
        .map_err(|_| RangeError::CorruptState("impossible HRR sums"))
}

/// Appends one tagged [`AnyOracle`] state.
fn persist_any(out: &mut Vec<u8>, oracle: &AnyOracle) {
    match oracle {
        AnyOracle::Oue(o) => {
            out.push(TAG_OUE);
            persist_oue(out, o);
        }
        AnyOracle::Olh(o) => {
            out.push(TAG_OLH);
            put_counts(out, o.num_reports(), o.support());
        }
        AnyOracle::Hrr(o) => {
            out.push(TAG_HRR);
            persist_hrr(out, o);
        }
        AnyOracle::Sue(o) => {
            out.push(TAG_SUE);
            put_counts(out, o.num_reports(), o.counts());
        }
    }
}

/// Restores one tagged [`AnyOracle`] state; the tag must match the
/// prototype's oracle kind.
fn restore_any(r: &mut StateReader<'_>, oracle: &mut AnyOracle) -> Result<(), RangeError> {
    let tag = r.u8()?;
    match (tag, oracle) {
        (TAG_OUE, AnyOracle::Oue(o)) => restore_oue(r, o),
        (TAG_OLH, AnyOracle::Olh(o)) => {
            let (reports, support) = get_counts(r, o.domain())?;
            o.load_state(support, reports)
                .map_err(|_| RangeError::CorruptState("impossible OLH support"))
        }
        (TAG_HRR, AnyOracle::Hrr(o)) => restore_hrr(r, o),
        (TAG_SUE, AnyOracle::Sue(o)) => {
            let (reports, counts) = get_counts(r, o.domain())?;
            o.load_state(counts, reports)
                .map_err(|_| RangeError::CorruptState("impossible SUE counts"))
        }
        _ => Err(RangeError::CorruptState(
            "oracle tag does not match prototype kind",
        )),
    }
}

// --- server impls ------------------------------------------------------

impl PersistableServer for FlatServer {
    fn persist_state(&self, out: &mut Vec<u8>) {
        persist_any(out, self.oracle());
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError> {
        restore_any(r, self.oracle_mut())
    }
}

impl PersistableServer for HhServer {
    fn persist_state(&self, out: &mut Vec<u8>) {
        for oracle in self.oracles() {
            persist_any(out, oracle);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError> {
        for oracle in self.oracles_mut() {
            restore_any(r, oracle)?;
        }
        Ok(())
    }
}

impl PersistableServer for HhSplitServer {
    fn persist_state(&self, out: &mut Vec<u8>) {
        for oracle in self.oracles() {
            persist_any(out, oracle);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError> {
        for oracle in self.oracles_mut() {
            restore_any(r, oracle)?;
        }
        Ok(())
    }
}

impl PersistableServer for HaarHrrServer {
    fn persist_state(&self, out: &mut Vec<u8>) {
        for oracle in self.oracles() {
            persist_hrr(out, oracle);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError> {
        for oracle in self.oracles_mut() {
            restore_hrr(r, oracle)?;
        }
        Ok(())
    }
}

impl PersistableServer for HaarOueServer {
    fn persist_state(&self, out: &mut Vec<u8>) {
        for oracle in self.oracles() {
            persist_oue(out, oracle);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError> {
        for oracle in self.oracles_mut() {
            restore_oue(r, oracle)?;
        }
        Ok(())
    }
}

impl PersistableServer for Hh2dServer {
    fn persist_state(&self, out: &mut Vec<u8>) {
        for oracle in self.oracles() {
            persist_any(out, oracle);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError> {
        for oracle in self.oracles_mut() {
            restore_any(r, oracle)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlatConfig, HaarConfig, HhConfig};
    use crate::estimate::RangeEstimate;
    use crate::flat::FlatClient;
    use crate::haar::calibration::HaarOueClient;
    use crate::haar::HaarHrrClient;
    use crate::hh::split::HhSplitClient;
    use crate::hh::HhClient;
    use crate::multidim::{Hh2dClient, Hh2dConfig};
    use ldp_freq_oracle::{Epsilon, FrequencyOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip<S, E>(server: &S, prototype: &S, estimate: E)
    where
        S: PersistableServer,
        E: Fn(&S) -> Vec<f64>,
    {
        let mut bytes = Vec::new();
        server.persist_state(&mut bytes);
        let mut restored = prototype.clone();
        let mut r = StateReader::new(&bytes);
        restored.restore_state(&mut r).expect("restore");
        assert_eq!(r.remaining(), 0, "state bytes not fully consumed");
        assert_eq!(restored.num_reports(), server.num_reports());
        for (a, b) in estimate(server).iter().zip(&estimate(&restored)) {
            assert!(
                a.to_bits() == b.to_bits(),
                "restored estimate differs: {a} vs {b}"
            );
        }
        // Every truncation prefix must error, never panic.
        for cut in 0..bytes.len() {
            let mut fresh = prototype.clone();
            let _ = fresh.restore_state(&mut StateReader::new(&bytes[..cut]));
        }
    }

    #[test]
    fn flat_roundtrips_every_oracle() {
        let mut rng = StdRng::seed_from_u64(601);
        for kind in [
            FrequencyOracle::Oue,
            FrequencyOracle::Olh,
            FrequencyOracle::Hrr,
            FrequencyOracle::Sue,
        ] {
            let config = FlatConfig::with_oracle(32, Epsilon::new(1.1), kind).unwrap();
            let client = FlatClient::new(&config).unwrap();
            let prototype = FlatServer::new(&config).unwrap();
            let mut server = prototype.clone();
            for i in 0..300 {
                MergeableServer::absorb(&mut server, &client.report(i % 32, &mut rng).unwrap())
                    .unwrap();
            }
            roundtrip(&server, &prototype, |s: &FlatServer| {
                s.estimate().frequencies().to_vec()
            });
        }
    }

    #[test]
    fn hh_families_roundtrip() {
        let mut rng = StdRng::seed_from_u64(602);
        let config = HhConfig::new(64, 4, Epsilon::from_exp(3.0)).unwrap();

        let client = HhClient::new(config.clone()).unwrap();
        let prototype = HhServer::new(config.clone()).unwrap();
        let mut server = prototype.clone();
        for i in 0..400 {
            MergeableServer::absorb(&mut server, &client.report(i % 64, &mut rng).unwrap())
                .unwrap();
        }
        roundtrip(&server, &prototype, |s: &HhServer| {
            s.estimate_consistent().to_frequency_estimate().cdf()
        });

        let client = HhSplitClient::new(config.clone()).unwrap();
        let prototype = HhSplitServer::new(config).unwrap();
        let mut server = prototype.clone();
        for i in 0..200 {
            MergeableServer::absorb(&mut server, &client.report(i % 64, &mut rng).unwrap())
                .unwrap();
        }
        roundtrip(&server, &prototype, |s: &HhSplitServer| {
            s.estimate_consistent().to_frequency_estimate().cdf()
        });
    }

    #[test]
    fn haar_families_roundtrip() {
        let mut rng = StdRng::seed_from_u64(603);
        let config = HaarConfig::new(64, Epsilon::new(1.1)).unwrap();

        let client = HaarHrrClient::new(config.clone()).unwrap();
        let prototype = HaarHrrServer::new(config.clone()).unwrap();
        let mut server = prototype.clone();
        for i in 0..400 {
            MergeableServer::absorb(&mut server, &client.report(i % 64, &mut rng).unwrap())
                .unwrap();
        }
        roundtrip(&server, &prototype, |s: &HaarHrrServer| {
            s.estimate().to_frequency_estimate().cdf()
        });

        let client = HaarOueClient::new(config.clone()).unwrap();
        let prototype = HaarOueServer::new(config).unwrap();
        let mut server = prototype.clone();
        for i in 0..400 {
            MergeableServer::absorb(&mut server, &client.report(i % 64, &mut rng).unwrap())
                .unwrap();
        }
        roundtrip(&server, &prototype, |s: &HaarOueServer| {
            s.estimate().to_frequency_estimate().cdf()
        });
    }

    #[test]
    fn hh2d_roundtrips() {
        let mut rng = StdRng::seed_from_u64(604);
        let config = Hh2dConfig::new(16, 2, Epsilon::new(1.1)).unwrap();
        let client = Hh2dClient::new(config.clone()).unwrap();
        let prototype = Hh2dServer::new(config).unwrap();
        let mut server = prototype.clone();
        for i in 0..300 {
            let (x, y) = (i % 16, (i * 7) % 16);
            MergeableServer::absorb(&mut server, &client.report(x, y, &mut rng).unwrap()).unwrap();
        }
        roundtrip(&server, &prototype, |s: &Hh2dServer| {
            let est = s.estimate();
            let side = est.side();
            (0..side * side)
                .map(|i| est.rectangle(i / side, i / side, i % side, i % side))
                .collect()
        });
    }

    #[test]
    fn corrupt_state_is_rejected_not_panicked() {
        let mut rng = StdRng::seed_from_u64(605);
        let config = FlatConfig::new(16, Epsilon::new(1.1)).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let prototype = FlatServer::new(&config).unwrap();
        let mut server = prototype.clone();
        for i in 0..50 {
            MergeableServer::absorb(&mut server, &client.report(i % 16, &mut rng).unwrap())
                .unwrap();
        }
        let mut bytes = Vec::new();
        server.persist_state(&mut bytes);

        // Wrong oracle tag.
        let mut wrong_tag = bytes.clone();
        wrong_tag[0] = TAG_HRR;
        assert!(matches!(
            prototype
                .clone()
                .restore_state(&mut StateReader::new(&wrong_tag)),
            Err(RangeError::CorruptState(_))
        ));

        // A count above the report total is impossible.
        let mut impossible = vec![TAG_OUE];
        put_varint(&mut impossible, 3); // reports
        for _ in 0..16 {
            put_varint(&mut impossible, 1000); // counts > reports
        }
        assert!(matches!(
            prototype
                .clone()
                .restore_state(&mut StateReader::new(&impossible)),
            Err(RangeError::CorruptState(_))
        ));

        // Arbitrary byte soup never panics.
        for seed in 0..32u8 {
            let soup: Vec<u8> = (0..64)
                .map(|i| seed.wrapping_mul(31).wrapping_add(i))
                .collect();
            let _ = prototype
                .clone()
                .restore_state(&mut StateReader::new(&soup));
        }
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut out = Vec::new();
            put_ivarint(&mut out, v);
            let mut r = StateReader::new(&out);
            assert_eq!(r.ivarint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn restored_state_merges_and_subtracts_exactly() {
        // A restored server is not a lookalike — it participates in the
        // exact-merge algebra identically to the original.
        let mut rng = StdRng::seed_from_u64(606);
        let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let prototype = HhServer::new(config).unwrap();
        let mut a = prototype.clone();
        let mut b = prototype.clone();
        for i in 0..200 {
            MergeableServer::absorb(&mut a, &client.report(i % 64, &mut rng).unwrap()).unwrap();
            MergeableServer::absorb(&mut b, &client.report((i * 3) % 64, &mut rng).unwrap())
                .unwrap();
        }
        let mut bytes = Vec::new();
        a.persist_state(&mut bytes);
        let mut restored = prototype.clone();
        restored
            .restore_state(&mut StateReader::new(&bytes))
            .unwrap();

        let mut merged_orig = a.clone();
        MergeableServer::merge(&mut merged_orig, &b).unwrap();
        let mut merged_rest = restored.clone();
        MergeableServer::merge(&mut merged_rest, &b).unwrap();
        let x = merged_orig.estimate_consistent().to_frequency_estimate();
        let y = merged_rest.estimate_consistent().to_frequency_estimate();
        for z in 0..64 {
            assert_eq!(x.point(z).to_bits(), y.point(z).to_bits());
        }
    }
}
