//! The query interface over reconstructed distributions.

/// Anything that can answer estimated range queries over a discrete domain
/// `[D]` — the output side of every mechanism in this crate
/// (Definition 4.1 of the paper: estimate `R[a,b]`, the fraction of users
/// whose value lies in the closed interval).
pub trait RangeEstimate {
    /// Domain size `D`.
    fn domain(&self) -> usize;

    /// Estimated fraction of users with value in the inclusive `[a, b]`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `a > b` or `b ≥ D`.
    fn range(&self, a: usize, b: usize) -> f64;

    /// Estimated fraction with value `≤ b` (prefix query, §4.7).
    fn prefix(&self, b: usize) -> f64 {
        self.range(0, b)
    }

    /// Estimated frequency of a single item (point query).
    fn point(&self, z: usize) -> f64 {
        self.range(z, z)
    }

    /// Estimated cumulative distribution: `cdf[z] = prefix(z)` for all `z`.
    fn cdf(&self) -> Vec<f64> {
        (0..self.domain()).map(|z| self.prefix(z)).collect()
    }
}

/// A reconstructed per-item frequency vector with `O(1)` range queries via
/// prefix sums.
///
/// This is the natural estimate of the flat mechanism; the tree mechanisms
/// can also be *collapsed* into one (exactly answer-preserving when the
/// tree is consistent — after constrained inference or for Haar by
/// construction — since then every range equals a difference of leaf
/// prefix sums, §4.5).
#[derive(Debug, Clone)]
pub struct FrequencyEstimate {
    freqs: Vec<f64>,
    /// `prefix[i]` = sum of `freqs[..i]`; length `D + 1`.
    prefix: Vec<f64>,
}

impl FrequencyEstimate {
    /// Wraps a per-item frequency vector.
    ///
    /// # Panics
    ///
    /// Panics on an empty vector.
    #[must_use]
    pub fn new(freqs: Vec<f64>) -> Self {
        assert!(!freqs.is_empty(), "estimate needs at least one item");
        let mut prefix = Vec::with_capacity(freqs.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &f in &freqs {
            acc += f;
            prefix.push(acc);
        }
        Self { freqs, prefix }
    }

    /// The per-item estimates.
    #[must_use]
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }
}

impl RangeEstimate for FrequencyEstimate {
    fn domain(&self) -> usize {
        self.freqs.len()
    }

    fn range(&self, a: usize, b: usize) -> f64 {
        assert!(a <= b && b < self.freqs.len(), "invalid range [{a}, {b}]");
        self.prefix[b + 1] - self.prefix[a]
    }

    fn point(&self, z: usize) -> f64 {
        self.freqs[z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_prefix_differences() {
        let est = FrequencyEstimate::new(vec![0.1, 0.2, 0.3, 0.4]);
        assert!((est.range(0, 3) - 1.0).abs() < 1e-12);
        assert!((est.range(1, 2) - 0.5).abs() < 1e-12);
        assert!((est.point(3) - 0.4).abs() < 1e-12);
        assert!((est.prefix(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_for_nonnegative_freqs() {
        let est = FrequencyEstimate::new(vec![0.25; 4]);
        let cdf = est.cdf();
        assert_eq!(cdf.len(), 4);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!((cdf[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_bad_range() {
        FrequencyEstimate::new(vec![1.0]).range(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn rejects_empty() {
        let _ = FrequencyEstimate::new(vec![]);
    }
}
