//! Population-scatter helpers shared by the tree mechanisms' simulation
//! paths.

use rand::RngCore;

use ldp_freq_oracle::binomial::{sample_multinomial, sample_uniform_multinomial};

/// Scatters each item's user count uniformly over `levels` cohorts (exact
/// multinomial per item) and streams the non-zero `(item, level, count)`
/// triples to `sink`.
///
/// Because every user samples her level independently of her value, this
/// per-item scatter reproduces the joint distribution of
/// (level cohort, item histogram) exactly: cohorts are disjoint and their
/// per-item counts are the multinomial thinning of the true histogram.
pub fn scatter_item_over_levels<F>(
    true_counts: &[u64],
    levels: usize,
    rng: &mut dyn RngCore,
    mut sink: F,
) where
    F: FnMut(usize, usize, u64),
{
    assert!(levels >= 1);
    for (z, &c) in true_counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let per_level = sample_uniform_multinomial(rng, c, levels);
        for (l, &cnt) in per_level.iter().enumerate() {
            if cnt > 0 {
                sink(z, l, cnt);
            }
        }
    }
}

/// Weighted variant of [`scatter_item_over_levels`]: cohort probabilities
/// given by `probs` (summing to 1). Used by the non-uniform level-sampling
/// ablation of Lemma 4.4.
pub fn scatter_item_over_weighted_levels<F>(
    true_counts: &[u64],
    probs: &[f64],
    rng: &mut dyn RngCore,
    mut sink: F,
) where
    F: FnMut(usize, usize, u64),
{
    assert!(!probs.is_empty());
    for (z, &c) in true_counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let per_level = sample_multinomial(rng, c, probs);
        for (l, &cnt) in per_level.iter().enumerate() {
            if cnt > 0 {
                sink(z, l, cnt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_totals_per_item() {
        let mut rng = StdRng::seed_from_u64(81);
        let counts = vec![10u64, 0, 7, 1_000];
        let mut back = vec![0u64; 4];
        scatter_item_over_levels(&counts, 3, &mut rng, |z, _l, c| back[z] += c);
        assert_eq!(back, counts);
    }

    #[test]
    fn levels_receive_uniform_share() {
        let mut rng = StdRng::seed_from_u64(82);
        let counts = vec![30_000u64];
        let mut per_level = [0u64; 5];
        scatter_item_over_levels(&counts, 5, &mut rng, |_z, l, c| per_level[l] += c);
        for (l, &c) in per_level.iter().enumerate() {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 0.2).abs() < 0.02, "level {l}: {frac}");
        }
    }

    #[test]
    fn weighted_scatter_preserves_totals_and_tracks_probs() {
        let mut rng = StdRng::seed_from_u64(84);
        let counts = vec![40_000u64];
        let probs = [0.7, 0.2, 0.1];
        let mut per_level = [0u64; 3];
        scatter_item_over_weighted_levels(&counts, &probs, &mut rng, |_z, l, c| {
            per_level[l] += c;
        });
        assert_eq!(per_level.iter().sum::<u64>(), 40_000);
        for (l, &p) in probs.iter().enumerate() {
            let frac = per_level[l] as f64 / 40_000.0;
            assert!((frac - p).abs() < 0.02, "level {l}: {frac} vs {p}");
        }
    }

    #[test]
    fn single_level_gets_everything() {
        let mut rng = StdRng::seed_from_u64(83);
        let counts = vec![5u64, 6];
        let mut seen = Vec::new();
        scatter_item_over_levels(&counts, 1, &mut rng, |z, l, c| seen.push((z, l, c)));
        assert_eq!(seen, vec![(0, 0, 5), (1, 0, 6)]);
    }
}
