//! The paper's closed-form accuracy theory, used to cross-check empirical
//! measurements and to pick parameters (optimal branching factors).
//!
//! All bounds are expressed in units of `VF`, the per-item frequency-oracle
//! variance (`ldp_freq_oracle::frequency_oracle_variance`).

/// Fact 1: a flat range query of length `r` has variance `r·VF`.
#[must_use]
pub fn flat_range_variance(vf: f64, r: usize) -> f64 {
    r as f64 * vf
}

/// Lemma 4.2: the average worst-case squared error of the flat method over
/// all `C(D,2)` range queries is `(D + 2)·VF / 3`.
#[must_use]
pub fn flat_average_error(vf: f64, domain: usize) -> f64 {
    (domain as f64 + 2.0) * vf / 3.0
}

/// Theorem 4.3 with uniform level sampling (Eq. 1): the worst-case variance
/// of an `HH_B` range query of length `r` is
/// `(2B − 1)·VF·h·(⌈log_B r⌉ + 1)`, `h = log_B D`.
#[must_use]
pub fn hh_range_variance_bound(vf: f64, fanout: usize, domain: usize, r: usize) -> f64 {
    let b = fanout as f64;
    let h = (domain as f64).log(b);
    let alpha = (r as f64).log(b).ceil() + 1.0;
    (2.0 * b - 1.0) * vf * h * alpha
}

/// Theorem 4.5: worst-case average squared error of `HH_B` over all range
/// queries, `≈ 2(B − 1)·VF·log_B D·log_B(3D²/(1 + 2D))`.
#[must_use]
pub fn hh_average_error_bound(vf: f64, fanout: usize, domain: usize) -> f64 {
    let b = fanout as f64;
    let d = domain as f64;
    2.0 * (b - 1.0) * vf * d.log(b) * (3.0 * d * d / (1.0 + 2.0 * d)).log(b)
}

/// §4.5 (after Lemma 4.6): with constrained inference the range-query
/// variance bound drops to `(B + 1)·VF·log_B r·log_B D / 2`.
#[must_use]
pub fn hh_ci_range_variance_bound(vf: f64, fanout: usize, domain: usize, r: usize) -> f64 {
    let b = fanout as f64;
    (b + 1.0) * vf * (r as f64).log(b) * (domain as f64).log(b) / 2.0
}

/// Eq. 3: the `HaarHRR` range-query variance bound `log2(D)²·VF / 2`,
/// independent of the range length.
#[must_use]
pub fn haar_range_variance_bound(vf: f64, domain: usize) -> f64 {
    let h = (domain as f64).log2();
    0.5 * h * h * vf
}

/// §4.7: prefix queries touch only one fringe, halving the variance bounds
/// of both tree mechanisms.
#[must_use]
pub fn prefix_variance_factor() -> f64 {
    0.5
}

/// The optimal real-valued branching factor for `HH_B`:
/// without consistency the root of `B ln B − 2B + 2 = 0` (≈ 4.922, §4.4);
/// with consistency the root of `B ln B − 2B − 2 = 0` (≈ 9.18, §4.5).
#[must_use]
pub fn optimal_fanout(consistent: bool) -> f64 {
    let c = if consistent { -2.0 } else { 2.0 };
    let f = |b: f64| b * b.ln() - 2.0 * b + c;
    // The derivative condition has a single root in (1, ∞); bracket and
    // bisect.
    let (mut lo, mut hi) = (1.5f64, 64.0f64);
    debug_assert!(f(lo) < 0.0 && f(hi) > 0.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// §4.3: the range length above which `HH_B` beats the flat method,
/// `r > 2B·log_B(D)²` (sufficient condition used in the paper's
/// discussion).
#[must_use]
pub fn hh_beats_flat_threshold(fanout: usize, domain: usize) -> f64 {
    let b = fanout as f64;
    let log = (domain as f64).log(b);
    2.0 * b * log * log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_fanouts_match_paper() {
        let b_plain = optimal_fanout(false);
        assert!((b_plain - 4.922).abs() < 0.01, "got {b_plain}");
        let b_ci = optimal_fanout(true);
        assert!((b_ci - 9.18).abs() < 0.01, "got {b_ci}");
    }

    #[test]
    fn ci_bound_at_b8_matches_equation_2() {
        // Eq. 2: with B = 8 the bound is (1/2)·VF·log2(r)·log2(D).
        let vf = 1.0;
        let d = 1 << 16;
        let r = 1 << 10;
        let bound = hh_ci_range_variance_bound(vf, 8, d, r);
        let expected = 0.5 * 10.0 * 16.0; // log2 r · log2 D / 2... times 9/ (2·9)
                                          // (B+1)/2 · log8 r · log8 D = 9/2 · (10/3) · (16/3) = 9·10·16/(2·9) = 80.
        assert!(
            (bound - expected).abs() < 1e-9,
            "bound {bound} vs {expected}"
        );
    }

    #[test]
    fn haar_and_ci_bounds_converge_for_long_ranges() {
        // §4.6: "for long range queries where r is close to D, (3) will be
        // close to (2)" — with the paper's B = 8 CI bound.
        let vf = 1.0;
        let d = 1 << 20;
        let haar = haar_range_variance_bound(vf, d);
        let ci = hh_ci_range_variance_bound(vf, 8, d, d);
        assert!((haar / ci - 1.0).abs() < 0.15, "haar {haar} vs ci {ci}");
    }

    #[test]
    fn flat_error_grows_linearly() {
        assert!(flat_range_variance(1.0, 100) > 10.0 * flat_range_variance(1.0, 9));
        assert!((flat_average_error(3.0, 10) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn hh_beats_flat_examples_from_paper() {
        // D = 64, B = 2: threshold 2·2·36 = 144 > 128 > D (no benefit).
        let t_small = hh_beats_flat_threshold(2, 64);
        assert!(t_small > 64.0);
        // D = 2^16, B = 2: threshold = 4·256 = 1024, ~1.5% of the range.
        let t_large = hh_beats_flat_threshold(2, 1 << 16);
        assert!((t_large - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn hh_bound_grows_logarithmically_in_r() {
        let vf = 1.0;
        let b = hh_range_variance_bound(vf, 4, 1 << 16, 4096);
        let b2 = hh_range_variance_bound(vf, 4, 1 << 16, 8192);
        assert!(b2 > b);
        // Doubling r adds at most one level's worth.
        assert!(b2 - b < (2.0 * 4.0 - 1.0) * vf * 8.0 + 1e-9);
    }

    #[test]
    fn average_error_bound_is_positive_and_ordered() {
        let vf = 1.0;
        let e4 = hh_average_error_bound(vf, 4, 1 << 16);
        let e16 = hh_average_error_bound(vf, 16, 1 << 16);
        assert!(e4 > 0.0 && e16 > 0.0);
    }
}
