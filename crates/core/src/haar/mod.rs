//! The Haar wavelet mechanism `HaarHRR` — paper §4.6.
//!
//! The Discrete Haar Transform imposes a full binary tree over the domain.
//! A user holding leaf `z` has exactly one non-zero rescaled Haar
//! coefficient per level, valued ±1: at the internal node whose subtree
//! contains `z`, with sign +1 if `z` falls in the left half and −1
//! otherwise. Each user samples one of the `h = log2 D` detail levels
//! uniformly and perturbs her signed one-hot level vector with Hadamard
//! Randomized Response — chosen because it natively handles the ±1 weights
//! and transmits a single bit plus indices. The 0-th (scaling) coefficient
//! needs no perturbation: it is the total population fraction, exactly 1.
//!
//! All coefficients are independent and uniquely determine a leaf vector,
//! so the mechanism is *consistent by design*: no post-processing is
//! needed, and a range query touches only the `O(log D)` coefficients of
//! nodes cut by the range.
//!
//! [`calibration`] holds the `HaarOUE` alternative the paper calibrated
//! HRR against.

pub mod calibration;

use rand::{Rng, RngCore};

use ldp_freq_oracle::{Hrr, HrrReport, PointOracle};
use ldp_transforms::HaarPyramid;

use crate::binomial_support::scatter_item_over_levels;
use crate::config::HaarConfig;
use crate::error::RangeError;
use crate::estimate::{FrequencyEstimate, RangeEstimate};

/// One user's `HaarHRR` report: the sampled detail level (as a node depth)
/// and the HRR-perturbed coefficient.
#[derive(Debug, Clone, Copy)]
pub struct HaarHrrReport {
    depth: u32,
    inner: HrrReport,
}

impl HaarHrrReport {
    /// Depth of the internal node whose coefficient was released
    /// (0 = root, `h − 1` = parents of leaves). The paper's level `l`,
    /// counting node heights, is `h − depth`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The HRR-perturbed coefficient (wire encoding).
    #[must_use]
    pub fn inner(&self) -> HrrReport {
        self.inner
    }

    /// Rebuilds a report from its transmitted parts (wire decoding).
    #[must_use]
    pub fn from_parts(depth: u32, inner: HrrReport) -> Self {
        Self { depth, inner }
    }
}

/// Sign of item `z`'s Haar coefficient at internal-node depth `d` within a
/// height-`h` tree, along with the node's index: `(node, sign)`.
#[inline]
pub(crate) fn coefficient_of(z: usize, depth: u32, height: u32) -> (usize, i8) {
    let node = z >> (height - depth);
    let bit = (z >> (height - depth - 1)) & 1;
    (node, if bit == 0 { 1 } else { -1 })
}

fn build_level_oracles(config: &HaarConfig) -> Result<Vec<Hrr>, RangeError> {
    (0..config.height)
        .map(|d| Hrr::new(1usize << d, config.epsilon).map_err(RangeError::from))
        .collect()
}

/// Client side of `HaarHRR`.
#[derive(Debug, Clone)]
pub struct HaarHrrClient {
    config: HaarConfig,
    encoders: Vec<Hrr>,
}

impl HaarHrrClient {
    /// Builds the client from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates HRR construction failures (cannot occur for a validated
    /// power-of-two config, but surfaced for API uniformity).
    pub fn new(config: HaarConfig) -> Result<Self, RangeError> {
        let encoders = build_level_oracles(&config)?;
        Ok(Self { config, encoders })
    }

    /// Perturbs one user's value: samples a detail level uniformly and
    /// releases the ±1 coefficient at that level through HRR. At the root
    /// level (one coefficient) this degenerates to 1-bit randomized
    /// response, exactly as in the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is outside the domain.
    pub fn report(&self, value: usize, rng: &mut dyn RngCore) -> Result<HaarHrrReport, RangeError> {
        if value >= self.config.domain {
            return Err(RangeError::Oracle(
                ldp_freq_oracle::OracleError::ValueOutOfDomain {
                    value,
                    domain: self.config.domain,
                },
            ));
        }
        let depth = rng.random_range(0..self.config.height);
        let (node, sign) = coefficient_of(value, depth, self.config.height);
        let inner = self.encoders[depth as usize].encode_signed(node, sign, rng)?;
        Ok(HaarHrrReport { depth, inner })
    }
}

/// Aggregator side of `HaarHRR`.
#[derive(Debug, Clone)]
pub struct HaarHrrServer {
    config: HaarConfig,
    levels: Vec<Hrr>,
}

impl HaarHrrServer {
    /// Builds the server from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates HRR construction failures.
    pub fn new(config: HaarConfig) -> Result<Self, RangeError> {
        let levels = build_level_oracles(&config)?;
        Ok(Self { config, levels })
    }

    /// The configuration this server was built from.
    #[must_use]
    pub fn config(&self) -> &HaarConfig {
        &self.config
    }

    /// The per-level HRR accumulators (persistence codec access).
    pub(crate) fn oracles(&self) -> &[Hrr] {
        &self.levels
    }

    /// Mutable per-level accumulators (persistence codec access).
    pub(crate) fn oracles_mut(&mut self) -> &mut [Hrr] {
        &mut self.levels
    }

    /// Merges another shard's per-level accumulators into this one.
    ///
    /// # Errors
    ///
    /// Rejects shards over a different domain.
    pub fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Removes a previously merged shard's per-level accumulators — the
    /// exact inverse of [`HaarHrrServer::merge`]. Staged against a copy so
    /// an underflow at any level leaves this server untouched.
    ///
    /// # Errors
    ///
    /// Rejects shards over a different domain, or state that was never
    /// merged into this one.
    pub fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        let mut staged = self.levels.clone();
        for (a, b) in staged.iter_mut().zip(&other.levels) {
            a.subtract(b)?;
        }
        self.levels = staged;
        Ok(())
    }

    /// Accumulates one user report at its sampled level.
    ///
    /// # Errors
    ///
    /// Rejects reports with an out-of-range depth.
    pub fn absorb(&mut self, report: &HaarHrrReport) -> Result<(), RangeError> {
        if report.depth >= self.config.height {
            return Err(RangeError::ReportShapeMismatch);
        }
        Ok(self.levels[report.depth as usize].absorb(&report.inner)?)
    }

    /// Absorbs a whole cohort from its true histogram (population-scale
    /// simulation: per-item multinomial scatter over levels, then the
    /// signed HRR aggregate simulation per level).
    ///
    /// # Errors
    ///
    /// Rejects histograms whose length differs from the domain.
    pub fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), RangeError> {
        if true_counts.len() != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        let h = self.config.height;
        let mut plus: Vec<Vec<u64>> = (0..h).map(|d| vec![0; 1usize << d]).collect();
        let mut minus: Vec<Vec<u64>> = (0..h).map(|d| vec![0; 1usize << d]).collect();
        scatter_item_over_levels(true_counts, h as usize, rng, |z, level_idx, count| {
            let depth = level_idx as u32;
            let (node, sign) = coefficient_of(z, depth, h);
            if sign > 0 {
                plus[level_idx][node] += count;
            } else {
                minus[level_idx][node] += count;
            }
        });
        for ((oracle, p), m) in self.levels.iter_mut().zip(&plus).zip(&minus) {
            oracle.absorb_population_signed(p, m, rng)?;
        }
        Ok(())
    }

    /// Total reports across all levels.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.levels.iter().map(PointOracle::num_reports).sum()
    }

    /// Reconstructs the estimate: unbiased per-node fraction differences
    /// assembled into a Haar pyramid with the scaling coefficient pinned to
    /// the exact total of 1.
    #[must_use]
    pub fn estimate(&self) -> HaarEstimate {
        let diffs: Vec<Vec<f64>> = self.levels.iter().map(PointOracle::estimate).collect();
        HaarEstimate {
            pyramid: HaarPyramid::from_parts(self.config.height, 1.0, diffs),
        }
    }
}

/// A reconstructed `HaarHRR` estimate: the noisy-but-unbiased Haar pyramid.
#[derive(Debug, Clone)]
pub struct HaarEstimate {
    pyramid: HaarPyramid,
}

impl HaarEstimate {
    /// Wraps a reconstructed pyramid (used by the `HaarOUE` calibration
    /// variant, which shares this estimate type).
    #[must_use]
    pub(crate) fn from_pyramid(pyramid: HaarPyramid) -> Self {
        Self { pyramid }
    }

    /// The underlying sum/difference pyramid.
    #[must_use]
    pub fn pyramid(&self) -> &HaarPyramid {
        &self.pyramid
    }

    /// Collapses to a per-item frequency vector with `O(1)` range queries.
    /// Exactly answer-preserving: the pyramid uniquely determines the leaf
    /// vector (consistency by design, §4.6).
    #[must_use]
    pub fn to_frequency_estimate(&self) -> FrequencyEstimate {
        FrequencyEstimate::new(self.pyramid.leaves())
    }
}

impl RangeEstimate for HaarEstimate {
    fn domain(&self) -> usize {
        self.pyramid.len()
    }

    fn range(&self, a: usize, b: usize) -> f64 {
        self.pyramid.range_sum(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coefficient_signs_follow_halves() {
        // Height 3 (D = 8): at the root (depth 0), items 0..4 are left.
        for z in 0..8usize {
            let (node, sign) = coefficient_of(z, 0, 3);
            assert_eq!(node, 0);
            assert_eq!(sign, if z < 4 { 1 } else { -1 }, "z={z}");
        }
        // Depth 2: nodes are pairs; sign alternates with the low bit.
        for z in 0..8usize {
            let (node, sign) = coefficient_of(z, 2, 3);
            assert_eq!(node, z / 2);
            assert_eq!(sign, if z % 2 == 0 { 1 } else { -1 });
        }
    }

    #[test]
    fn per_user_end_to_end() {
        let eps = Epsilon::from_exp(3.0);
        let config = HaarConfig::new(64, eps).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let mut server = HaarHrrServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let n = 60_000usize;
        for i in 0..n {
            let v = 16 + (i % 32); // mass on [16, 47]
            let r = client.report(v, &mut rng).unwrap();
            server.absorb(&r).unwrap();
        }
        assert_eq!(server.num_reports(), n as u64);
        let est = server.estimate();
        assert!(
            (est.range(16, 47) - 1.0).abs() < 0.1,
            "got {}",
            est.range(16, 47)
        );
        assert!(est.range(48, 63).abs() < 0.1);
        // Total mass is hardcoded to exactly 1 (the 0th coefficient).
        assert!((est.range(0, 63) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn population_path_is_unbiased() {
        let eps = Epsilon::new(1.1);
        let config = HaarConfig::new(256, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(92);
        let counts = vec![1_000u64; 256];
        let mut mean = 0.0;
        let reps = 20;
        for _ in 0..reps {
            let mut server = HaarHrrServer::new(config.clone()).unwrap();
            server.absorb_population(&counts, &mut rng).unwrap();
            mean += server.estimate().range(64, 191) / f64::from(reps);
        }
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn collapsed_estimate_preserves_answers() {
        let eps = Epsilon::new(1.1);
        let config = HaarConfig::new(128, eps).unwrap();
        let mut server = HaarHrrServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(93);
        server
            .absorb_population(&vec![500u64; 128], &mut rng)
            .unwrap();
        let est = server.estimate();
        let flat = est.to_frequency_estimate();
        for (a, b) in [(0, 127), (5, 90), (64, 64), (32, 95)] {
            assert!(
                (est.range(a, b) - flat.range(a, b)).abs() < 1e-9,
                "range [{a},{b}]"
            );
        }
    }

    #[test]
    fn report_depth_distribution_is_uniform() {
        let config = HaarConfig::new(16, Epsilon::new(1.0)).unwrap();
        let client = HaarHrrClient::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(94);
        let mut per_depth = [0u32; 4];
        for _ in 0..8_000 {
            let r = client.report(3, &mut rng).unwrap();
            per_depth[r.depth() as usize] += 1;
        }
        for (d, &c) in per_depth.iter().enumerate() {
            let frac = f64::from(c) / 8_000.0;
            assert!((frac - 0.25).abs() < 0.03, "depth {d}: {frac}");
        }
    }

    #[test]
    fn rejects_shape_mismatches() {
        let mut rng = StdRng::seed_from_u64(95);
        let big = HaarHrrClient::new(HaarConfig::new(64, Epsilon::new(1.0)).unwrap()).unwrap();
        let mut small = HaarHrrServer::new(HaarConfig::new(4, Epsilon::new(1.0)).unwrap()).unwrap();
        // Find a report whose depth is out of range for the small server.
        loop {
            let r = big.report(10, &mut rng).unwrap();
            if r.depth() >= 2 {
                assert!(small.absorb(&r).is_err());
                break;
            }
        }
        assert!(small.absorb_population(&[1, 2, 3], &mut rng).is_err());
        assert!(big.report(64, &mut rng).is_err());
    }
}
