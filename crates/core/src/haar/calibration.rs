//! `HaarOUE`: the alternative Haar level perturbation the paper calibrated
//! against and omitted.
//!
//! §4.6: "There are various straightforward ways to adapt the methods that
//! we have already … We have confirmed this choice \[HRR\] empirically in
//! calibration experiments (omitted for brevity): HRR is consistent with
//! other choices in terms of accuracy, and so is preferred for its
//! convenience and compactness." This module regenerates that omitted
//! calibration: OUE does not handle ±1 weights natively, so the signed
//! one-hot level vector over `M = 2^d` nodes is re-encoded as an
//! *unsigned* one-hot vector over `2M` cells — cell `2t` for `+e_t`, cell
//! `2t + 1` for `−e_t` — released through standard OUE, and decoded as
//! `d̂_t = θ̂[2t] − θ̂[2t+1]`.
//!
//! Accuracy is expected to match `HaarHRR` (both carry `VF` per cell);
//! the trade-off is communication: `2M` bits per user instead of
//! `log2 M + 1`. The `haar_calibration` integration test checks the
//! accuracy claim.

use rand::{Rng, RngCore};

use ldp_freq_oracle::{Oue, OueReport, PointOracle};
use ldp_transforms::HaarPyramid;

use crate::binomial_support::scatter_item_over_levels;
use crate::config::HaarConfig;
use crate::error::RangeError;
use crate::haar::{coefficient_of, HaarEstimate};

/// One user's `HaarOUE` report: sampled depth plus the perturbed unsigned
/// `2M`-cell vector.
#[derive(Debug, Clone)]
pub struct HaarOueReport {
    depth: u32,
    inner: OueReport,
}

impl HaarOueReport {
    /// Depth of the internal node whose coefficient was released.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The perturbed `2M`-cell vector (wire encoding).
    #[must_use]
    pub fn inner(&self) -> &OueReport {
        &self.inner
    }

    /// Rebuilds a report from its transmitted parts (wire decoding).
    #[must_use]
    pub fn from_parts(depth: u32, inner: OueReport) -> Self {
        Self { depth, inner }
    }
}

fn build_level_oracles(config: &HaarConfig) -> Result<Vec<Oue>, RangeError> {
    (0..config.height)
        .map(|d| Oue::new(2 * (1usize << d), config.epsilon).map_err(RangeError::from))
        .collect()
}

/// Client side of `HaarOUE`.
#[derive(Debug, Clone)]
pub struct HaarOueClient {
    config: HaarConfig,
    encoders: Vec<Oue>,
}

impl HaarOueClient {
    /// Builds the client.
    ///
    /// # Errors
    ///
    /// Propagates OUE construction failures.
    pub fn new(config: HaarConfig) -> Result<Self, RangeError> {
        let encoders = build_level_oracles(&config)?;
        Ok(Self { config, encoders })
    }

    /// Perturbs one user's value through the signed-to-unsigned cell
    /// encoding.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is outside the domain.
    pub fn report(&self, value: usize, rng: &mut dyn RngCore) -> Result<HaarOueReport, RangeError> {
        if value >= self.config.domain {
            return Err(RangeError::Oracle(
                ldp_freq_oracle::OracleError::ValueOutOfDomain {
                    value,
                    domain: self.config.domain,
                },
            ));
        }
        let depth = rng.random_range(0..self.config.height);
        let (node, sign) = coefficient_of(value, depth, self.config.height);
        let cell = 2 * node + usize::from(sign < 0);
        let inner = self.encoders[depth as usize].encode(cell, rng)?;
        Ok(HaarOueReport { depth, inner })
    }
}

/// Aggregator side of `HaarOUE`.
#[derive(Debug, Clone)]
pub struct HaarOueServer {
    config: HaarConfig,
    levels: Vec<Oue>,
}

impl HaarOueServer {
    /// Builds the server.
    ///
    /// # Errors
    ///
    /// Propagates OUE construction failures.
    pub fn new(config: HaarConfig) -> Result<Self, RangeError> {
        let levels = build_level_oracles(&config)?;
        Ok(Self { config, levels })
    }

    /// The per-level OUE accumulators (persistence codec access).
    pub(crate) fn oracles(&self) -> &[Oue] {
        &self.levels
    }

    /// Mutable per-level accumulators (persistence codec access).
    pub(crate) fn oracles_mut(&mut self) -> &mut [Oue] {
        &mut self.levels
    }

    /// Merges another shard's per-level accumulators into this one.
    ///
    /// # Errors
    ///
    /// Rejects shards over a different domain.
    pub fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Removes a previously merged shard's per-level accumulators — the
    /// exact inverse of [`HaarOueServer::merge`]. Staged against a copy so
    /// an underflow at any level leaves this server untouched.
    ///
    /// # Errors
    ///
    /// Rejects shards over a different domain, or state that was never
    /// merged into this one.
    pub fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        let mut staged = self.levels.clone();
        for (a, b) in staged.iter_mut().zip(&other.levels) {
            a.subtract(b)?;
        }
        self.levels = staged;
        Ok(())
    }

    /// Accumulates one user report.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range depths.
    pub fn absorb(&mut self, report: &HaarOueReport) -> Result<(), RangeError> {
        if report.depth >= self.config.height {
            return Err(RangeError::ReportShapeMismatch);
        }
        Ok(self.levels[report.depth as usize].absorb(&report.inner)?)
    }

    /// Absorbs a whole cohort (population-scale simulation; OUE noise is
    /// independent per cell, so the interleaved ± cell histogram feeds the
    /// exact binomial aggregate directly).
    ///
    /// # Errors
    ///
    /// Rejects histograms whose length differs from the domain.
    pub fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), RangeError> {
        if true_counts.len() != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        let h = self.config.height;
        let mut cells: Vec<Vec<u64>> = (0..h).map(|d| vec![0; 2 * (1usize << d)]).collect();
        scatter_item_over_levels(true_counts, h as usize, rng, |z, level_idx, count| {
            let (node, sign) = coefficient_of(z, level_idx as u32, h);
            cells[level_idx][2 * node + usize::from(sign < 0)] += count;
        });
        for (oracle, counts) in self.levels.iter_mut().zip(&cells) {
            oracle.absorb_population(counts, rng)?;
        }
        Ok(())
    }

    /// Total reports across all levels.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.levels.iter().map(PointOracle::num_reports).sum()
    }

    /// Reconstructs the estimate as a Haar pyramid:
    /// `d̂_t = θ̂[2t] − θ̂[2t+1]` per node, scaling coefficient pinned to 1.
    #[must_use]
    pub fn estimate(&self) -> HaarEstimate {
        let diffs: Vec<Vec<f64>> = self
            .levels
            .iter()
            .map(|oracle| {
                let cells = oracle.estimate();
                cells
                    .chunks_exact(2)
                    .map(|pair| pair[0] - pair[1])
                    .collect()
            })
            .collect();
        HaarEstimate::from_pyramid(HaarPyramid::from_parts(self.config.height, 1.0, diffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::RangeEstimate;
    use ldp_freq_oracle::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn per_user_end_to_end() {
        let eps = Epsilon::from_exp(3.0);
        let config = HaarConfig::new(64, eps).unwrap();
        let client = HaarOueClient::new(config.clone()).unwrap();
        let mut server = HaarOueServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(201);
        for i in 0..60_000usize {
            let v = 16 + (i % 32);
            let r = client.report(v, &mut rng).unwrap();
            server.absorb(&r).unwrap();
        }
        let est = server.estimate();
        assert!(
            (est.range(16, 47) - 1.0).abs() < 0.1,
            "got {}",
            est.range(16, 47)
        );
        assert!((est.range(0, 63) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn population_path_is_unbiased() {
        let eps = Epsilon::new(1.1);
        let config = HaarConfig::new(128, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(202);
        let counts = vec![1_000u64; 128];
        let mut mean = 0.0;
        let reps = 20;
        for _ in 0..reps {
            let mut server = HaarOueServer::new(config.clone()).unwrap();
            server.absorb_population(&counts, &mut rng).unwrap();
            mean += server.estimate().range(32, 95) / f64::from(reps);
        }
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn rejects_shape_mismatches() {
        let mut rng = StdRng::seed_from_u64(203);
        let client = HaarOueClient::new(HaarConfig::new(64, Epsilon::new(1.0)).unwrap()).unwrap();
        let mut server =
            HaarOueServer::new(HaarConfig::new(4, Epsilon::new(1.0)).unwrap()).unwrap();
        loop {
            let r = client.report(9, &mut rng).unwrap();
            if r.depth() >= 2 {
                assert!(server.absorb(&r).is_err());
                break;
            }
        }
        assert!(server.absorb_population(&[1, 2, 3], &mut rng).is_err());
        assert!(client.report(64, &mut rng).is_err());
    }
}
