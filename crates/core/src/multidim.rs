//! Two-dimensional range queries (paper §6, "Multidimensional range
//! queries").
//!
//! The hierarchical decomposition extends to `[D]²` by crossing two B-adic
//! decompositions: any axis-aligned rectangle splits into at most
//! `O(log_B² D)` B-adic rectangles, each identified by a pair of tree nodes
//! `(node_x, node_y)`. Users therefore sample a *pair of depths*
//! `(d_x, d_y)` uniformly from `{0..h}² \ {(0,0)}` (depth 0 on an axis
//! means "whole axis", so pairs with one zero release the other axis's
//! marginal; `(0,0)` would be the constant 1 and carries no information)
//! and release the one-hot cell vector of the corresponding
//! `B^{d_x} × B^{d_y}` grid through a frequency oracle.
//!
//! The variance of a rectangle query scales with `log⁴_B D` (`log_B² D`
//! rectangles, each `1/p` level-sampling inflation with `p = 1/((h+1)²−1)`),
//! matching the `log^{2d} D` rate the paper states for `d` dimensions.

use rand::{Rng, RngCore};

use ldp_freq_oracle::{AnyOracle, AnyReport, Epsilon, FrequencyOracle, PointOracle};
use ldp_transforms::{decompose_range, CompleteTree};

use crate::binomial_support::scatter_item_over_levels;
use crate::error::RangeError;

/// Configuration of the 2-D hierarchical mechanism over `[side]²`.
#[derive(Debug, Clone)]
pub struct Hh2dConfig {
    /// Domain side length `D = B^h` (total domain `D²`).
    pub side: usize,
    /// Branching factor per axis.
    pub fanout: usize,
    /// Per-axis tree height `h`.
    pub height: u32,
    /// Privacy budget per user.
    pub epsilon: Epsilon,
    /// Frequency oracle releasing each sampled grid.
    pub oracle: FrequencyOracle,
}

impl Hh2dConfig {
    /// Builds a 2-D configuration (OUE grids by default).
    ///
    /// # Errors
    ///
    /// Same validation as the 1-D `HhConfig`.
    pub fn new(side: usize, fanout: usize, epsilon: Epsilon) -> Result<Self, RangeError> {
        Self::with_oracle(side, fanout, epsilon, FrequencyOracle::Oue)
    }

    /// Builds a 2-D configuration with an explicit oracle.
    ///
    /// # Errors
    ///
    /// Same validation as the 1-D `HhConfig`.
    pub fn with_oracle(
        side: usize,
        fanout: usize,
        epsilon: Epsilon,
        oracle: FrequencyOracle,
    ) -> Result<Self, RangeError> {
        if fanout < 2 {
            return Err(RangeError::FanoutTooSmall(fanout));
        }
        let height =
            ldp_transforms::exact_log(side, fanout).ok_or(RangeError::DomainNotPowerOfFanout {
                domain: side,
                fanout,
            })?;
        if height == 0 {
            return Err(RangeError::DomainTooSmall(side));
        }
        if oracle.requires_power_of_two() && !fanout.is_power_of_two() {
            return Err(RangeError::DomainNotPowerOfTwo(fanout));
        }
        Ok(Self {
            side,
            fanout,
            height,
            epsilon,
            oracle,
        })
    }

    /// Number of sampled depth pairs: `(h+1)² − 1`.
    #[must_use]
    pub fn num_grids(&self) -> usize {
        let levels = self.height as usize + 1;
        levels * levels - 1
    }

    fn shape(&self) -> CompleteTree {
        CompleteTree::with_height(self.fanout, self.height)
    }

    /// Enumerates depth pairs in a fixed order (skipping `(0,0)`).
    fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let h = self.height;
        (0..=h)
            .flat_map(move |dx| (0..=h).map(move |dy| (dx, dy)))
            .filter(|&p| p != (0, 0))
    }

    fn pair_index(&self, dx: u32, dy: u32) -> usize {
        (dx * (self.height + 1) + dy) as usize - 1
    }
}

/// One user's 2-D report: the sampled depth pair and the perturbed one-hot
/// grid-cell vector.
#[derive(Debug, Clone)]
pub struct Hh2dReport {
    dx: u32,
    dy: u32,
    inner: AnyReport,
}

impl Hh2dReport {
    /// The sampled depth pair `(d_x, d_y)`.
    #[must_use]
    pub fn depths(&self) -> (u32, u32) {
        (self.dx, self.dy)
    }

    /// The perturbed grid-cell vector (wire encoding).
    #[must_use]
    pub fn inner(&self) -> &AnyReport {
        &self.inner
    }

    /// Rebuilds a report from its transmitted parts (wire decoding).
    #[must_use]
    pub fn from_parts(dx: u32, dy: u32, inner: AnyReport) -> Self {
        Self { dx, dy, inner }
    }
}

fn build_grid_oracles(config: &Hh2dConfig) -> Result<Vec<AnyOracle>, RangeError> {
    let shape = config.shape();
    config
        .pairs()
        .map(|(dx, dy)| {
            let cells = shape.nodes_at_depth(dx) * shape.nodes_at_depth(dy);
            AnyOracle::new(config.oracle, cells, config.epsilon).map_err(RangeError::from)
        })
        .collect()
}

/// Client side of the 2-D mechanism.
#[derive(Debug, Clone)]
pub struct Hh2dClient {
    config: Hh2dConfig,
    shape: CompleteTree,
    encoders: Vec<AnyOracle>,
}

impl Hh2dClient {
    /// Builds the client.
    ///
    /// # Errors
    ///
    /// Propagates grid-oracle construction failures.
    pub fn new(config: Hh2dConfig) -> Result<Self, RangeError> {
        let encoders = build_grid_oracles(&config)?;
        let shape = config.shape();
        Ok(Self {
            config,
            shape,
            encoders,
        })
    }

    /// Perturbs one user's point `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the domain.
    pub fn report(
        &self,
        x: usize,
        y: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Hh2dReport, RangeError> {
        if x >= self.config.side || y >= self.config.side {
            return Err(RangeError::Oracle(
                ldp_freq_oracle::OracleError::ValueOutOfDomain {
                    value: x.max(y),
                    domain: self.config.side,
                },
            ));
        }
        let k = rng.random_range(0..self.config.num_grids());
        let (dx, dy) = self.config.pairs().nth(k).expect("pair index in range");
        let nx = self.shape.ancestor_at_depth(x, dx);
        let ny = self.shape.ancestor_at_depth(y, dy);
        let cell = nx * self.shape.nodes_at_depth(dy) + ny;
        let inner = self.encoders[self.config.pair_index(dx, dy)].encode(cell, rng)?;
        Ok(Hh2dReport { dx, dy, inner })
    }
}

/// Aggregator side of the 2-D mechanism.
#[derive(Debug, Clone)]
pub struct Hh2dServer {
    config: Hh2dConfig,
    shape: CompleteTree,
    grids: Vec<AnyOracle>,
}

impl Hh2dServer {
    /// Builds the server.
    ///
    /// # Errors
    ///
    /// Propagates grid-oracle construction failures.
    pub fn new(config: Hh2dConfig) -> Result<Self, RangeError> {
        let grids = build_grid_oracles(&config)?;
        let shape = config.shape();
        Ok(Self {
            config,
            shape,
            grids,
        })
    }

    /// The per-grid oracle accumulators (persistence codec access).
    pub(crate) fn oracles(&self) -> &[AnyOracle] {
        &self.grids
    }

    /// Mutable per-grid accumulators (persistence codec access).
    pub(crate) fn oracles_mut(&mut self) -> &mut [AnyOracle] {
        &mut self.grids
    }

    /// Merges another shard's per-grid accumulators into this one.
    ///
    /// # Errors
    ///
    /// Rejects shards with a different side length or fanout.
    pub fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.side != self.config.side || other.config.fanout != self.config.fanout {
            return Err(RangeError::ReportShapeMismatch);
        }
        for (a, b) in self.grids.iter_mut().zip(&other.grids) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Removes a previously merged shard's per-grid accumulators — the
    /// exact inverse of [`Hh2dServer::merge`]. Staged against a copy so an
    /// underflow at any grid leaves this server untouched.
    ///
    /// # Errors
    ///
    /// Rejects shards of mismatched shape, or state that was never merged
    /// into this one.
    pub fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.side != self.config.side || other.config.fanout != self.config.fanout {
            return Err(RangeError::ReportShapeMismatch);
        }
        let mut staged = self.grids.clone();
        for (a, b) in staged.iter_mut().zip(&other.grids) {
            a.subtract(b)?;
        }
        self.grids = staged;
        Ok(())
    }

    /// Accumulates one report.
    ///
    /// # Errors
    ///
    /// Rejects mismatched depth pairs.
    pub fn absorb(&mut self, report: &Hh2dReport) -> Result<(), RangeError> {
        if report.dx > self.config.height
            || report.dy > self.config.height
            || (report.dx, report.dy) == (0, 0)
        {
            return Err(RangeError::ReportShapeMismatch);
        }
        let idx = self.config.pair_index(report.dx, report.dy);
        Ok(self.grids[idx].absorb(&report.inner)?)
    }

    /// Absorbs a cohort from its true 2-D histogram, flattened row-major
    /// (`counts[x·side + y]`).
    ///
    /// # Errors
    ///
    /// Rejects histograms whose length is not `side²`.
    pub fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), RangeError> {
        let side = self.config.side;
        if true_counts.len() != side * side {
            return Err(RangeError::ReportShapeMismatch);
        }
        let pairs: Vec<(u32, u32)> = self.config.pairs().collect();
        let mut grid_counts: Vec<Vec<u64>> = pairs
            .iter()
            .map(|&(dx, dy)| {
                vec![0u64; self.shape.nodes_at_depth(dx) * self.shape.nodes_at_depth(dy)]
            })
            .collect();
        scatter_item_over_levels(true_counts, pairs.len(), rng, |z, level_idx, count| {
            let (x, y) = (z / side, z % side);
            let (dx, dy) = pairs[level_idx];
            let cell = self.shape.ancestor_at_depth(x, dx) * self.shape.nodes_at_depth(dy)
                + self.shape.ancestor_at_depth(y, dy);
            grid_counts[level_idx][cell] += count;
        });
        for (oracle, counts) in self.grids.iter_mut().zip(grid_counts.iter()) {
            oracle.absorb_population(counts, rng)?;
        }
        Ok(())
    }

    /// Total reports across all grids.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.grids.iter().map(PointOracle::num_reports).sum()
    }

    /// Reconstructs the per-grid estimates for rectangle evaluation.
    #[must_use]
    pub fn estimate(&self) -> Hh2dEstimate {
        Hh2dEstimate {
            config: self.config.clone(),
            shape: self.shape,
            grids: self.grids.iter().map(PointOracle::estimate).collect(),
        }
    }
}

/// Reconstructed 2-D estimates: one fraction histogram per sampled grid.
#[derive(Debug, Clone)]
pub struct Hh2dEstimate {
    config: Hh2dConfig,
    shape: CompleteTree,
    grids: Vec<Vec<f64>>,
}

impl Hh2dEstimate {
    /// Domain side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.config.side
    }

    /// Estimated fraction of users in the rectangle
    /// `[x_lo, x_hi] × [y_lo, y_hi]` (inclusive), assembled from the
    /// crossed B-adic decompositions.
    ///
    /// # Panics
    ///
    /// Panics on invalid rectangle bounds.
    pub fn rectangle(&self, x_lo: usize, x_hi: usize, y_lo: usize, y_hi: usize) -> f64 {
        if (x_lo, x_hi) == (0, self.config.side - 1) && (y_lo, y_hi) == (0, self.config.side - 1) {
            return 1.0; // the (0,0) grid: the whole domain, known exactly
        }
        let xs = decompose_range(&self.shape, x_lo, x_hi);
        let ys = decompose_range(&self.shape, y_lo, y_hi);
        let mut total = 0.0;
        for nx in &xs {
            for ny in &ys {
                let cols = self.shape.nodes_at_depth(ny.depth);
                let grid = &self.grids[self.config.pair_index(nx.depth, ny.depth)];
                total += grid[nx.index * cols + ny.index];
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_counts_grids() {
        let c = Hh2dConfig::new(16, 2, Epsilon::new(1.1)).unwrap();
        assert_eq!(c.height, 4);
        assert_eq!(c.num_grids(), 24);
        assert_eq!(c.pairs().count(), 24);
        // pair_index is a bijection onto 0..24.
        let mut seen = [false; 24];
        for (dx, dy) in c.pairs() {
            let i = c.pair_index(dx, dy);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn per_user_rectangle_estimation() {
        let eps = Epsilon::from_exp(3.0);
        let config = Hh2dConfig::new(16, 2, eps).unwrap();
        let client = Hh2dClient::new(config.clone()).unwrap();
        let mut server = Hh2dServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(101);
        // All users in the quadrant [0,7] × [8,15].
        let n = 60_000;
        for i in 0..n {
            let r = client.report(i % 8, 8 + (i % 8), &mut rng).unwrap();
            server.absorb(&r).unwrap();
        }
        assert_eq!(server.num_reports(), n as u64);
        let est = server.estimate();
        let q = est.rectangle(0, 7, 8, 15);
        assert!((q - 1.0).abs() < 0.15, "quadrant estimate {q}");
        let empty = est.rectangle(8, 15, 0, 7);
        assert!(empty.abs() < 0.15, "empty quadrant {empty}");
        assert!((est.rectangle(0, 15, 0, 15) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn population_path_is_unbiased() {
        let eps = Epsilon::new(1.1);
        let config = Hh2dConfig::new(16, 4, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(102);
        let counts = vec![100u64; 256];
        let mut mean = 0.0;
        let reps = 20;
        for _ in 0..reps {
            let mut server = Hh2dServer::new(config.clone()).unwrap();
            server.absorb_population(&counts, &mut rng).unwrap();
            // Rectangle covering 1/4 of x and 1/2 of y: mass 1/8.
            mean += server.estimate().rectangle(0, 3, 0, 7) / f64::from(reps);
        }
        assert!((mean - 0.125).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn marginal_queries_use_single_axis_grids() {
        let eps = Epsilon::new(1.1);
        let config = Hh2dConfig::new(16, 2, eps).unwrap();
        let mut server = Hh2dServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(103);
        let mut counts = vec![0u64; 256];
        // Mass only where x < 8.
        for x in 0..8usize {
            for y in 0..16usize {
                counts[x * 16 + y] = 500;
            }
        }
        server.absorb_population(&counts, &mut rng).unwrap();
        let est = server.estimate();
        // x-marginal query: full y-range → y decomposes to the root (depth
        // 0) and the answer comes from the (d_x, 0) grids.
        let m = est.rectangle(0, 7, 0, 15);
        assert!((m - 1.0).abs() < 0.1, "marginal {m}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let eps = Epsilon::new(1.1);
        let config = Hh2dConfig::new(16, 2, eps).unwrap();
        let client = Hh2dClient::new(config.clone()).unwrap();
        let mut server = Hh2dServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(104);
        assert!(client.report(16, 0, &mut rng).is_err());
        assert!(server.absorb_population(&[0; 10], &mut rng).is_err());
    }
}
