//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! API this workspace's benches use (the build environment is offline).
//!
//! Semantics: each benchmark closure is warmed up once, then timed over an
//! adaptive number of iterations (targeting ~50 ms of wall time per
//! benchmark, capped) and the mean time per iteration is printed. There is
//! no statistical analysis, HTML report, or baseline comparison — the goal
//! is that `cargo bench` compiles, runs every bench, and prints useful
//! numbers, with the same source-level API as upstream.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall time per benchmark measurement.
const TARGET: Duration = Duration::from_millis(50);
/// Iteration cap so very cheap closures don't spin for long.
const MAX_ITERS: u64 = 1_000_000;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, upstream's two-part id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    last: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then an adaptively sized
    /// timed batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, u128::from(MAX_ITERS)) as u64;
        let started = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let total = started.elapsed();
        self.last = Some(total / u32::try_from(iters).unwrap_or(u32::MAX));
        self.iters = iters;
    }
}

fn run_one(full_name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        last: None,
        iters: 0,
    };
    f(&mut b);
    match b.last {
        Some(per_iter) => {
            println!(
                "bench: {full_name:<56} {per_iter:>12.2?}/iter  ({} iters)",
                b.iters
            );
        }
        None => println!("bench: {full_name:<56} (no measurement)"),
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tuning knob; accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream tuning knob; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b));
        self
    }

    /// Ends the group (upstream finalizes reports here; we need nothing).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), |b| f(b));
        self
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from a list of group-runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
