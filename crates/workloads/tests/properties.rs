//! Property-based tests for workload generation and query enumeration.

use proptest::prelude::*;

use ldp_workloads::{
    all_ranges, evenly_spaced_starts, prefixes, ranges_of_length, CauchyParams, Dataset,
    DistributionKind, QueryWorkload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn pmfs_are_valid_distributions(
        domain in 2usize..2_000,
        center in 0.05f64..0.95,
        scale in 0.01f64..0.5,
        zipf_s in 0.2f64..3.0,
    ) {
        for kind in [
            DistributionKind::Cauchy(CauchyParams {
                center_fraction: center,
                scale_fraction: scale,
            }),
            DistributionKind::Zipf { exponent: zipf_s },
            DistributionKind::Gaussian { center_fraction: center, sd_fraction: scale },
            DistributionKind::Uniform,
        ] {
            let pmf = kind.pmf(domain);
            prop_assert_eq!(pmf.len(), domain);
            prop_assert!(pmf.iter().all(|&p| p >= 0.0 && p.is_finite()));
            let total: f64 = pmf.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_dataset_conserves_population(
        domain_log in 1u32..10,
        n in 0u64..200_000,
        seed in 0u64..500,
    ) {
        let domain = 1usize << domain_log;
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::sample(
            DistributionKind::Cauchy(CauchyParams::paper_default()),
            domain,
            n,
            &mut rng,
        );
        prop_assert_eq!(ds.population(), n);
        prop_assert_eq!(ds.counts().iter().sum::<u64>(), n);
        if n > 0 {
            prop_assert!((ds.true_range(0, domain - 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn every_workload_count_matches_enumeration(
        domain in 2usize..200,
        step in 1usize..50,
        r_frac in 0.0f64..1.0,
    ) {
        let r = ((r_frac * domain as f64) as usize).clamp(1, domain);
        for wl in [
            QueryWorkload::All,
            QueryWorkload::SpacedStarts { step },
            QueryWorkload::FixedLength { r },
            QueryWorkload::Prefixes,
        ] {
            prop_assert_eq!(
                wl.count(domain),
                wl.queries(domain).count() as u64,
                "workload {:?} at domain {}",
                wl,
                domain
            );
        }
    }

    #[test]
    fn query_generators_emit_valid_intervals(
        domain in 2usize..150,
        step in 1usize..40,
    ) {
        for q in all_ranges(domain).take(2_000) {
            prop_assert!(q.a <= q.b && q.b < domain);
        }
        for q in evenly_spaced_starts(domain, step) {
            prop_assert!(q.a <= q.b && q.b < domain);
            prop_assert_eq!(q.a % step, 0);
        }
        for q in prefixes(domain) {
            prop_assert_eq!(q.a, 0);
        }
        let r = (domain / 3).max(1);
        for q in ranges_of_length(domain, r) {
            prop_assert_eq!(q.len(), r);
        }
    }

    #[test]
    fn dataset_quantiles_are_monotone_in_phi(
        counts in proptest::collection::vec(0u64..1_000, 2..64),
    ) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let ds = Dataset::from_counts(counts);
        let mut last = 0usize;
        for i in 1..=10u32 {
            let q = ds.true_quantile(f64::from(i) / 10.0);
            prop_assert!(q >= last);
            last = q;
        }
    }
}
