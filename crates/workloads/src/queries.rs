//! Range-query workload generators (paper §5, "Sampling range queries for
//! evaluation").
//!
//! For small and moderate domains the paper evaluates *all* range queries;
//! for `D ≥ 2^20` it picks "a set of evenly-spaced starting points, and
//! then evaluate\[s\] all ranges that begin at each of these points" (e.g.
//! every `2^15` for `D = 2^20` → 17M queries). Both strategies are
//! implemented as allocation-free iterators.

/// A closed interval query `[a, b]` over `[D]` (Definition 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    /// Inclusive lower endpoint.
    pub a: usize,
    /// Inclusive upper endpoint.
    pub b: usize,
}

impl RangeQuery {
    /// Length `r = b − a + 1`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.b - self.a + 1
    }

    /// Queries are never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// All `D(D+1)/2` closed intervals, in `(a, b)` lexicographic order.
pub fn all_ranges(domain: usize) -> impl Iterator<Item = RangeQuery> {
    (0..domain).flat_map(move |a| (a..domain).map(move |b| RangeQuery { a, b }))
}

/// All `D − r + 1` intervals of one fixed length `r` (used by Figure 4,
/// which plots the error per query length).
///
/// # Panics
///
/// Panics unless `1 ≤ r ≤ D`.
pub fn ranges_of_length(domain: usize, r: usize) -> impl Iterator<Item = RangeQuery> {
    assert!(
        r >= 1 && r <= domain,
        "invalid length {r} for domain {domain}"
    );
    (0..=domain - r).map(move |a| RangeQuery { a, b: a + r - 1 })
}

/// The paper's large-domain strategy: start points every `step` positions,
/// then every interval beginning at each start point.
///
/// # Panics
///
/// Panics on a zero step.
pub fn evenly_spaced_starts(domain: usize, step: usize) -> impl Iterator<Item = RangeQuery> {
    assert!(step >= 1, "step must be positive");
    (0..domain)
        .step_by(step)
        .flat_map(move |a| (a..domain).map(move |b| RangeQuery { a, b }))
}

/// All `D` prefix queries `[0, b]` (§4.7 / Figure 6).
pub fn prefixes(domain: usize) -> impl Iterator<Item = RangeQuery> {
    (0..domain).map(|b| RangeQuery { a: 0, b })
}

/// How to enumerate evaluation queries — selected per domain size by the
/// experiment harness exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryWorkload {
    /// Every closed interval (paper: `D = 2^8`, `2^16`).
    All,
    /// Evenly spaced start points (paper: `2^15` for `D = 2^20`, `2^16`
    /// for `D = 2^22`).
    SpacedStarts {
        /// Distance between consecutive start points.
        step: usize,
    },
    /// Only intervals of one length (Figure 4's per-length panels).
    FixedLength {
        /// Interval length.
        r: usize,
    },
    /// All prefix queries (Figure 6).
    Prefixes,
}

impl QueryWorkload {
    /// The paper's workload choice for a given domain size: exhaustive up
    /// to `2^16`, spaced starts above (step `2^15` at `2^20`, `2^16` at
    /// `2^22`, scaled proportionally elsewhere).
    #[must_use]
    pub fn paper_default(domain: usize) -> Self {
        if domain <= 1 << 16 {
            Self::All
        } else {
            // 32 start points (step D/32): this reproduces the paper's
            // reported totals of 17M queries at D = 2^20 and 69M at
            // D = 2^22. (The paper's prose says "every 2^15 and 2^16
            // steps", but 2^16 at D = 2^22 would give 136M queries; the
            // 69M figure corresponds to step 2^17 = D/32.)
            Self::SpacedStarts { step: domain >> 5 }
        }
    }

    /// Materializes the iterator.
    pub fn queries(self, domain: usize) -> Box<dyn Iterator<Item = RangeQuery>> {
        match self {
            Self::All => Box::new(all_ranges(domain)),
            Self::SpacedStarts { step } => Box::new(evenly_spaced_starts(domain, step)),
            Self::FixedLength { r } => Box::new(ranges_of_length(domain, r)),
            Self::Prefixes => Box::new(prefixes(domain)),
        }
    }

    /// Number of queries without enumerating them.
    #[must_use]
    pub fn count(self, domain: usize) -> u64 {
        match self {
            Self::All => (domain as u64) * (domain as u64 + 1) / 2,
            Self::SpacedStarts { step } => {
                (0..domain).step_by(step).map(|a| (domain - a) as u64).sum()
            }
            Self::FixedLength { r } => (domain - r + 1) as u64,
            Self::Prefixes => domain as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ranges_counts() {
        let qs: Vec<_> = all_ranges(4).collect();
        assert_eq!(qs.len(), 10);
        assert_eq!(qs[0], RangeQuery { a: 0, b: 0 });
        assert_eq!(qs[9], RangeQuery { a: 3, b: 3 });
        assert_eq!(QueryWorkload::All.count(4), 10);
    }

    #[test]
    fn fixed_length_covers_all_starts() {
        let qs: Vec<_> = ranges_of_length(10, 4).collect();
        assert_eq!(qs.len(), 7);
        assert!(qs.iter().all(|q| q.len() == 4));
        assert_eq!(qs[6], RangeQuery { a: 6, b: 9 });
    }

    #[test]
    fn spaced_starts_match_paper_counts() {
        // D = 2^20, step = 2^15: the paper reports "a total of 17M".
        let count = QueryWorkload::SpacedStarts { step: 1 << 15 }.count(1 << 20);
        assert!((16_000_000..18_000_000).contains(&count), "count {count}");
        // D = 2^22 with 32 start points: the paper's "69M unique queries".
        let count = QueryWorkload::SpacedStarts { step: 1 << 17 }.count(1 << 22);
        assert!((68_000_000..70_000_000).contains(&count), "count {count}");
    }

    #[test]
    fn counts_match_enumeration() {
        for wl in [
            QueryWorkload::All,
            QueryWorkload::SpacedStarts { step: 7 },
            QueryWorkload::FixedLength { r: 5 },
            QueryWorkload::Prefixes,
        ] {
            let domain = 64;
            assert_eq!(
                wl.count(domain),
                wl.queries(domain).count() as u64,
                "workload {wl:?}"
            );
        }
    }

    #[test]
    fn prefixes_start_at_zero() {
        assert!(prefixes(16).all(|q| q.a == 0));
        assert_eq!(prefixes(16).count(), 16);
    }

    #[test]
    fn paper_default_switches_at_large_domains() {
        assert_eq!(QueryWorkload::paper_default(256), QueryWorkload::All);
        assert_eq!(
            QueryWorkload::paper_default(1 << 20),
            QueryWorkload::SpacedStarts { step: 1 << 15 }
        );
        assert_eq!(
            QueryWorkload::paper_default(1 << 22),
            QueryWorkload::SpacedStarts { step: 1 << 17 }
        );
    }

    #[test]
    #[should_panic(expected = "invalid length")]
    fn rejects_zero_length() {
        let _ = ranges_of_length(8, 0);
    }
}
