//! Synthetic workloads and ground truth for evaluating LDP range-query
//! mechanisms (paper §5).
//!
//! * [`distributions`] — the paper's truncated discrete Cauchy family
//!   (center `P·D`, scale `D/10`) plus Zipf/Gaussian/uniform shapes.
//! * [`dataset`] — populations as exact histograms with `O(1)` true range
//!   answers, sampled with one multinomial draw instead of `N` user draws.
//! * [`queries`] — the query enumeration strategies: exhaustive for small
//!   domains, evenly-spaced start points for large ones, fixed-length
//!   panels, and prefixes.

pub mod dataset;
pub mod distributions;
pub mod queries;

pub use dataset::Dataset;
pub use distributions::{CauchyParams, DistributionKind};
pub use queries::{
    all_ranges, evenly_spaced_starts, prefixes, ranges_of_length, QueryWorkload, RangeQuery,
};
