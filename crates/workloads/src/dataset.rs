//! Populations of private user values and their exact ground truth.

use rand::{Rng, RngCore};

use ldp_freq_oracle::binomial::sample_multinomial;

use crate::distributions::DistributionKind;

/// A synthetic population: the true histogram of `N` users' values over
/// `[D]`, with precomputed prefix sums so that exact range answers — the
/// ground truth every mechanism is scored against — cost `O(1)`.
#[derive(Debug, Clone)]
pub struct Dataset {
    counts: Vec<u64>,
    /// `prefix[i]` = users with value `< i`; length `D + 1`.
    prefix: Vec<u64>,
    total: u64,
}

impl Dataset {
    /// Builds a dataset from an explicit histogram.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram.
    #[must_use]
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "dataset needs a non-empty domain");
        let mut prefix = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &c in &counts {
            acc += c;
            prefix.push(acc);
        }
        Self {
            counts,
            prefix,
            total: acc,
        }
    }

    /// Builds a dataset from raw user values.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[domain]` or the domain is empty.
    #[must_use]
    pub fn from_values(domain: usize, values: &[usize]) -> Self {
        let mut counts = vec![0u64; domain];
        for &v in values {
            assert!(v < domain, "value {v} outside domain {domain}");
            counts[v] += 1;
        }
        Self::from_counts(counts)
    }

    /// Samples an `n`-user population from a distribution — one exact
    /// multinomial draw over the distribution's pmf, equivalent to `n`
    /// i.i.d. user draws but `O(D)` instead of `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics on a zero-size domain.
    #[must_use]
    pub fn sample(kind: DistributionKind, domain: usize, n: u64, rng: &mut dyn RngCore) -> Self {
        let pmf = kind.pmf(domain);
        Self::from_counts(sample_multinomial(rng, n, &pmf))
    }

    /// Domain size `D`.
    #[must_use]
    pub fn domain(&self) -> usize {
        self.counts.len()
    }

    /// Number of users `N`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.total
    }

    /// The true histogram (what `absorb_population` consumes).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// True fraction of users with value in the inclusive `[a, b]` —
    /// the quantity `R[a,b]` of Definition 4.1.
    ///
    /// # Panics
    ///
    /// Panics on invalid bounds.
    #[must_use]
    pub fn true_range(&self, a: usize, b: usize) -> f64 {
        assert!(a <= b && b < self.counts.len(), "invalid range [{a}, {b}]");
        if self.total == 0 {
            return 0.0;
        }
        (self.prefix[b + 1] - self.prefix[a]) as f64 / self.total as f64
    }

    /// True prefix fraction `R[0,b]`.
    #[must_use]
    pub fn true_prefix(&self, b: usize) -> f64 {
        self.true_range(0, b)
    }

    /// True per-item frequencies.
    #[must_use]
    pub fn true_frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// True cumulative distribution `cdf[z] = R[0,z]`.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        (0..self.counts.len())
            .map(|z| self.true_prefix(z))
            .collect()
    }

    /// Draws one user's value, distributed as this population's histogram
    /// (inverse-CDF over the precomputed prefix sums, `O(log D)`).
    ///
    /// # Panics
    ///
    /// Panics on an empty population (there is no value to draw).
    pub fn sample_value<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(
            self.total > 0,
            "cannot sample a value from an empty population"
        );
        let r = rng.random_range(0..self.total);
        // Smallest z with prefix[z + 1] > r, i.e. the value whose count
        // block contains the r-th user.
        self.prefix[1..].partition_point(|&c| c <= r)
    }

    /// True φ-quantile: the smallest index whose prefix fraction reaches φ.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ phi ≤ 1`.
    #[must_use]
    pub fn true_quantile(&self, phi: f64) -> usize {
        assert!((0.0..=1.0).contains(&phi));
        (0..self.counts.len())
            .find(|&z| self.true_prefix(z) >= phi)
            .unwrap_or(self.counts.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::CauchyParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_values_counts_correctly() {
        let ds = Dataset::from_values(4, &[0, 1, 1, 3, 3, 3]);
        assert_eq!(ds.counts(), &[1, 2, 0, 3]);
        assert_eq!(ds.population(), 6);
        assert!((ds.true_range(1, 2) - 2.0 / 6.0).abs() < 1e-12);
        assert!((ds.true_prefix(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_dataset_tracks_pmf() {
        let mut rng = StdRng::seed_from_u64(111);
        let kind = DistributionKind::Cauchy(CauchyParams::paper_default());
        let domain = 256;
        let ds = Dataset::sample(kind, domain, 1 << 20, &mut rng);
        assert_eq!(ds.population(), 1 << 20);
        let pmf = kind.pmf(domain);
        let truth: f64 = pmf[90..=110].iter().sum();
        assert!((ds.true_range(90, 110) - truth).abs() < 0.01);
    }

    #[test]
    fn quantiles_match_cdf_scan() {
        let ds = Dataset::from_counts(vec![10, 0, 30, 40, 20]);
        assert_eq!(ds.true_quantile(0.1), 0);
        assert_eq!(ds.true_quantile(0.11), 2);
        assert_eq!(ds.true_quantile(0.5), 3);
        assert_eq!(ds.true_quantile(1.0), 4);
        let cdf = ds.cdf();
        assert!((cdf[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_all_zeros() {
        let ds = Dataset::from_counts(vec![0, 0, 0]);
        assert_eq!(ds.true_range(0, 2), 0.0);
        assert_eq!(ds.true_frequencies(), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_out_of_domain_values() {
        let _ = Dataset::from_values(4, &[4]);
    }
}
