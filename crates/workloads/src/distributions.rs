//! Synthetic input distributions over a discrete domain `[D]`.
//!
//! The paper's evaluation draws user values from a truncated, discretized
//! Cauchy distribution: "the location of the center at P × D, for
//! 0 < P < 1 … larger height parameters tend to reduce the sparsity … our
//! default choice is height = D/10 and P = 0.4" (§5). Values falling
//! outside `[D]` are dropped, i.e. the distribution is renormalized over
//! the domain. Zipf, Gaussian and uniform shapes are provided for the
//! "variety of real and synthetic data" robustness claims.

/// Parameters of the paper's Cauchy workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauchyParams {
    /// Center position as a fraction `P` of the domain (`0 < P < 1`).
    pub center_fraction: f64,
    /// Scale ("height") as a fraction of the domain; the paper's default
    /// is `0.1` (i.e. `D/10`).
    pub scale_fraction: f64,
}

impl CauchyParams {
    /// The paper's default: `P = 0.4`, scale `D/10`.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            center_fraction: 0.4,
            scale_fraction: 0.1,
        }
    }

    /// A Cauchy centered at fraction `p` with the default scale.
    #[must_use]
    pub fn centered_at(p: f64) -> Self {
        Self {
            center_fraction: p,
            scale_fraction: 0.1,
        }
    }
}

/// Shape of the synthetic input distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistributionKind {
    /// Truncated discretized Cauchy (the paper's workload).
    Cauchy(CauchyParams),
    /// Zipf over item ranks with exponent `s` (classic heavy-hitter shape).
    Zipf {
        /// Exponent `s > 0`.
        exponent: f64,
    },
    /// Truncated discretized Gaussian.
    Gaussian {
        /// Mean position as a fraction of the domain.
        center_fraction: f64,
        /// Standard deviation as a fraction of the domain.
        sd_fraction: f64,
    },
    /// Uniform over the domain.
    Uniform,
}

impl DistributionKind {
    /// Exact probability mass function over `[domain]`, renormalized after
    /// truncation. This is the ground truth the mechanisms are judged
    /// against.
    ///
    /// # Panics
    ///
    /// Panics on a zero-size domain or non-positive shape parameters.
    #[must_use]
    pub fn pmf(&self, domain: usize) -> Vec<f64> {
        assert!(domain > 0, "domain must be non-empty");
        let d = domain as f64;
        let raw: Vec<f64> = match *self {
            Self::Cauchy(CauchyParams {
                center_fraction,
                scale_fraction,
            }) => {
                assert!(scale_fraction > 0.0, "Cauchy scale must be positive");
                let x0 = center_fraction * d;
                let gamma = scale_fraction * d;
                // Mass of cell z is F(z+1) − F(z) for the continuous CDF
                // F(x) = 1/2 + atan((x − x0)/γ)/π.
                let cdf = |x: f64| 0.5 + ((x - x0) / gamma).atan() / std::f64::consts::PI;
                (0..domain)
                    .map(|z| cdf(z as f64 + 1.0) - cdf(z as f64))
                    .collect()
            }
            Self::Zipf { exponent } => {
                assert!(exponent > 0.0, "Zipf exponent must be positive");
                (0..domain)
                    .map(|z| ((z + 1) as f64).powf(-exponent))
                    .collect()
            }
            Self::Gaussian {
                center_fraction,
                sd_fraction,
            } => {
                assert!(sd_fraction > 0.0, "Gaussian sd must be positive");
                let mu = center_fraction * d;
                let sd = sd_fraction * d;
                (0..domain)
                    .map(|z| {
                        let t = (z as f64 + 0.5 - mu) / sd;
                        (-0.5 * t * t).exp()
                    })
                    .collect()
            }
            Self::Uniform => vec![1.0; domain],
        };
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|p| p / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_distribution(pmf: &[f64]) {
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
        assert!(pmf.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn all_kinds_produce_distributions() {
        for kind in [
            DistributionKind::Cauchy(CauchyParams::paper_default()),
            DistributionKind::Zipf { exponent: 1.1 },
            DistributionKind::Gaussian {
                center_fraction: 0.5,
                sd_fraction: 0.2,
            },
            DistributionKind::Uniform,
        ] {
            for domain in [2usize, 256, 1 << 12] {
                assert_is_distribution(&kind.pmf(domain));
            }
        }
    }

    #[test]
    fn cauchy_peaks_at_center() {
        let pmf = DistributionKind::Cauchy(CauchyParams::centered_at(0.4)).pmf(1000);
        let peak = pmf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!((peak as i64 - 400).unsigned_abs() <= 1, "peak at {peak}");
    }

    #[test]
    fn cauchy_shift_moves_mass() {
        let left = DistributionKind::Cauchy(CauchyParams::centered_at(0.1)).pmf(512);
        let right = DistributionKind::Cauchy(CauchyParams::centered_at(0.9)).pmf(512);
        let left_mass: f64 = left[..256].iter().sum();
        let right_mass: f64 = right[..256].iter().sum();
        assert!(left_mass > 0.8, "left-centered mass {left_mass}");
        assert!(right_mass < 0.2, "right-centered mass {right_mass}");
    }

    #[test]
    fn larger_height_flattens_cauchy() {
        // "Larger height parameters tend to reduce the sparsity … by
        // flattening it."
        let narrow = DistributionKind::Cauchy(CauchyParams {
            center_fraction: 0.5,
            scale_fraction: 0.01,
        })
        .pmf(1024);
        let wide = DistributionKind::Cauchy(CauchyParams {
            center_fraction: 0.5,
            scale_fraction: 0.3,
        })
        .pmf(1024);
        let max_narrow = narrow.iter().cloned().fold(0.0, f64::max);
        let max_wide = wide.iter().cloned().fold(0.0, f64::max);
        assert!(max_narrow > 3.0 * max_wide);
    }

    #[test]
    fn zipf_is_decreasing() {
        let pmf = DistributionKind::Zipf { exponent: 1.0 }.pmf(100);
        for w in pmf.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn gaussian_is_symmetric_around_center() {
        let pmf = DistributionKind::Gaussian {
            center_fraction: 0.5,
            sd_fraction: 0.1,
        }
        .pmf(256);
        for off in 1..100usize {
            let a = pmf[128 - off];
            let b = pmf[127 + off];
            assert!((a - b).abs() < 1e-9, "offset {off}");
        }
    }
}
