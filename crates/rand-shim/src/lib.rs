//! A minimal, dependency-free drop-in for the subset of the `rand` 0.9 API
//! this workspace uses (the build environment is fully offline, so the real
//! crate cannot be fetched).
//!
//! Provided surface:
//!
//! * [`RngCore`] — object-safe raw-randomness source (`next_u32/u64`,
//!   `fill_bytes`), usable as `&mut dyn RngCore`.
//! * [`Rng`] — blanket extension with `random::<T>()` and
//!   `random_range(a..b)` over the integer/float types the workspace
//!   samples.
//! * [`SeedableRng`] + [`rngs::StdRng`] — a deterministic, seedable
//!   generator. The implementation is xoshiro256++ (Blackman & Vigna)
//!   seeded through SplitMix64; it passes the usual statistical batteries,
//!   which the workspace's unbiasedness tests rely on. The *stream* differs
//!   from upstream `StdRng` (ChaCha12) — upstream makes no cross-version
//!   stream guarantee either, and every test seeds explicitly.
//!
//! Integer ranges are sampled with Lemire's unbiased multiply-shift
//! rejection method; floats with the standard 53-bit mantissa trick.

use std::ops::{Range, RangeInclusive};

/// Object-safe source of raw random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full value range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased `[0, n)` draw via Lemire's multiply-shift rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Accept x when the low 64 bits of x·n land at or above 2^64 mod n;
    // the high 64 bits are then exactly uniform over [0, n).
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(n);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        // Treating the closed interval as half-open is standard practice for
        // floats (the endpoint has measure zero).
        let u = f64::standard_sample(rng);
        lo + (hi - lo) * u
    }
}

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention upstream `rand` documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start at the all-zero state.
                let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
                for w in &mut s {
                    *w = splitmix64(&mut x);
                }
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(5u64..6);
            assert_eq!(v, 5);
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn integer_range_is_unbiased() {
        // Chi-square-ish sanity check over a small modulus.
        let mut rng = StdRng::seed_from_u64(3);
        let k = 13usize;
        let n = 130_000;
        let mut buckets = vec![0u32; k];
        for _ in 0..n {
            buckets[rng.random_range(0..k)] += 1;
        }
        let expect = n as f64 / k as f64;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (f64::from(b) - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn dyn_rng_core_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&v));
        assert!(dyn_rng.random_range(0u32..10) < 10);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
