//! Centralized flat baseline: one Laplace-noised count per item.

use rand::RngCore;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{FrequencyEstimate, RangeError};

use crate::laplace::sample_laplace;

/// The classic ε-DP histogram: each count is released with `Lap(1/ε)`
/// noise (each user occupies one bin, so the per-bin sensitivity of the
/// add/remove neighboring relation is 1).
#[derive(Debug, Clone)]
pub struct CdpFlat {
    domain: usize,
    epsilon: Epsilon,
}

impl CdpFlat {
    /// Builds the mechanism.
    ///
    /// # Errors
    ///
    /// Rejects trivial domains.
    pub fn new(domain: usize, epsilon: Epsilon) -> Result<Self, RangeError> {
        if domain < 2 {
            return Err(RangeError::DomainTooSmall(domain));
        }
        Ok(Self { domain, epsilon })
    }

    /// Releases noisy fraction estimates from the exact histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram length differs from the domain.
    pub fn release(&self, true_counts: &[u64], rng: &mut dyn RngCore) -> FrequencyEstimate {
        assert_eq!(true_counts.len(), self.domain, "histogram/domain mismatch");
        let n: u64 = true_counts.iter().sum();
        let n_f = if n == 0 { 1.0 } else { n as f64 };
        let scale = 1.0 / self.epsilon.value();
        FrequencyEstimate::new(
            true_counts
                .iter()
                .map(|&c| (c as f64 + sample_laplace(rng, scale)) / n_f)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_ranges::RangeEstimate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accurate_for_large_population() {
        let mech = CdpFlat::new(64, Epsilon::new(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(151);
        let counts = vec![10_000u64; 64];
        let est = mech.release(&counts, &mut rng);
        assert!((est.range(0, 31) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn long_ranges_accumulate_noise() {
        // Range variance is r·2/ε²/N² — linear in r, same shape as the
        // local Fact 1.
        let mech = CdpFlat::new(128, Epsilon::new(0.5)).unwrap();
        let mut rng = StdRng::seed_from_u64(152);
        let counts = vec![100u64; 128];
        let reps = 3_000;
        let (mut sq_short, mut sq_long) = (0.0, 0.0);
        for _ in 0..reps {
            let est = mech.release(&counts, &mut rng);
            sq_short += (est.range(0, 0) - 1.0 / 128.0).powi(2);
            sq_long += (est.range(0, 127) - 1.0).powi(2);
        }
        let ratio = sq_long / sq_short;
        assert!(
            (64.0..256.0).contains(&ratio),
            "expected ~128x, got {ratio}"
        );
    }

    #[test]
    fn rejects_trivial_domain() {
        assert!(CdpFlat::new(1, Epsilon::new(1.0)).is_err());
    }
}
