//! Privelet: centralized differential privacy in the Haar wavelet domain
//! (Xiao, Wang & Gehrke, TKDE 2011 — reference \[29\] of the paper).
//!
//! The trusted aggregator computes the exact orthonormal Haar transform of
//! the count histogram and perturbs each coefficient with Laplace noise
//! whose scale is matched to the coefficient's sensitivity. Adding or
//! removing one user changes exactly one coefficient per level, by
//! `2^{−j/2}` at detail level `j` (node block size `2^j`) and by `2^{−h/2}`
//! for the scaling coefficient. Splitting the budget equally over the
//! `h + 1` levels gives scale `λ_j = (h+1)·2^{−j/2}/ε` and per-level range
//! variance `≈ 2(h+1)²/ε²`, i.e. the `O(log³ D/ε²)` error the literature
//! reports.

use rand::RngCore;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{FrequencyEstimate, RangeError};
use ldp_transforms::{haar_forward, haar_inverse};

use crate::laplace::sample_laplace;

/// The Privelet mechanism over a power-of-two domain.
#[derive(Debug, Clone)]
pub struct Privelet {
    domain: usize,
    height: u32,
    epsilon: Epsilon,
}

impl Privelet {
    /// Builds the mechanism.
    ///
    /// # Errors
    ///
    /// Rejects non-power-of-two or trivial domains.
    pub fn new(domain: usize, epsilon: Epsilon) -> Result<Self, RangeError> {
        if domain < 2 {
            return Err(RangeError::DomainTooSmall(domain));
        }
        if !domain.is_power_of_two() {
            return Err(RangeError::DomainNotPowerOfTwo(domain));
        }
        Ok(Self {
            domain,
            height: domain.trailing_zeros(),
            epsilon,
        })
    }

    /// Laplace scale for a coefficient whose node has block size `2^j`
    /// (`j = h` addresses the scaling coefficient).
    #[must_use]
    pub fn coefficient_scale(&self, block_log: u32) -> f64 {
        let levels = f64::from(self.height) + 1.0;
        levels * 2f64.powf(-0.5 * f64::from(block_log)) / self.epsilon.value()
    }

    /// Releases noisy per-item *fraction* estimates from the exact
    /// histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram length differs from the domain.
    pub fn release(&self, true_counts: &[u64], rng: &mut dyn RngCore) -> FrequencyEstimate {
        assert_eq!(true_counts.len(), self.domain, "histogram/domain mismatch");
        let n: u64 = true_counts.iter().sum();
        let n_f = if n == 0 { 1.0 } else { n as f64 };
        let counts: Vec<f64> = true_counts.iter().map(|&c| c as f64).collect();
        let mut coeffs = haar_forward(&counts);
        // Scaling coefficient (index 0): block log = h.
        coeffs[0] += sample_laplace(rng, self.coefficient_scale(self.height));
        // Detail coefficient at slot 2^d + t has block size 2^{h−d}.
        for depth in 0..self.height {
            let start = 1usize << depth;
            let block_log = self.height - depth;
            let scale = self.coefficient_scale(block_log);
            for coeff in &mut coeffs[start..start * 2] {
                *coeff += sample_laplace(rng, scale);
            }
        }
        let noisy = haar_inverse(&coeffs);
        FrequencyEstimate::new(noisy.into_iter().map(|c| c / n_f).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_ranges::RangeEstimate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_domain() {
        let eps = Epsilon::new(1.0);
        assert!(Privelet::new(256, eps).is_ok());
        assert!(Privelet::new(100, eps).is_err());
        assert!(Privelet::new(1, eps).is_err());
    }

    #[test]
    fn scales_decrease_with_block_size() {
        let p = Privelet::new(256, Epsilon::new(1.0)).unwrap();
        // Finer levels (small blocks) have larger sensitivity → larger λ.
        assert!(p.coefficient_scale(1) > p.coefficient_scale(8));
    }

    #[test]
    fn release_is_accurate_for_large_populations() {
        let eps = Epsilon::new(1.0);
        let p = Privelet::new(256, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(141);
        let counts = vec![100_000u64; 256];
        let est = p.release(&counts, &mut rng);
        assert!((est.range(0, 127) - 0.5).abs() < 1e-3);
        assert!((est.range(64, 191) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn per_level_range_variance_is_flat() {
        // The defining property of Privelet's calibration: every level
        // contributes ~equally, so range variance is ~independent of range
        // length (up to the number of cut levels).
        let eps = Epsilon::new(1.0);
        let p = Privelet::new(64, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(142);
        let counts = vec![1_000u64; 64];
        let truth_short = 4.0 / 64.0;
        let truth_long = 32.0 / 64.0;
        let reps = 1_500;
        let (mut sq_short, mut sq_long) = (0.0, 0.0);
        for _ in 0..reps {
            let est = p.release(&counts, &mut rng);
            sq_short += (est.range(30, 33) - truth_short).powi(2);
            sq_long += (est.range(16, 47) - truth_long).powi(2);
        }
        let ratio = sq_long / sq_short;
        assert!(
            (0.3..3.0).contains(&ratio),
            "long/short variance ratio should be O(1), got {ratio}"
        );
    }
}
