//! Centralized (trusted-aggregator) differential privacy baselines.
//!
//! The paper's Figure 7 reproduces Qardaji et al.'s Table 3 to contrast the
//! centralized and local settings: centrally, the hierarchical method with
//! fanout 16 clearly beats the wavelet approach (by ≥ 1.86×), whereas
//! locally the two are within a few percent of each other. To regenerate
//! that comparison rather than quote it, this crate implements the
//! centralized mechanisms themselves:
//!
//! * [`flat`] — per-item `Lap(1/ε)` histogram noise.
//! * [`hierarchy`] — hierarchical histograms with the budget *split* across
//!   levels (`Lap(h/ε)` per node) and optional constrained inference.
//! * [`wavelet`] — Privelet: sensitivity-calibrated Laplace noise in the
//!   Haar coefficient domain.
//!
//! All releases implement `ldp_ranges::RangeEstimate`, so the evaluation
//! harness scores them with the same code paths as the local mechanisms.
//! Note the centralized variance scales as `1/N²` versus the local `1/N` —
//! "a necessary cost to provide local privacy guarantees" (paper §4.4).

pub mod flat;
pub mod hierarchy;
pub mod laplace;
pub mod wavelet;

pub use flat::CdpFlat;
pub use hierarchy::{CdpHierarchical, CdpTreeEstimate};
pub use laplace::{laplace_variance, sample_laplace};
pub use wavelet::Privelet;
