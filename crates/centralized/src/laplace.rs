//! Laplace noise — the workhorse of centralized differential privacy.

use rand::{Rng, RngCore};

/// Draws from the Laplace distribution with location 0 and the given scale
/// `b` (density `exp(−|x|/b)/(2b)`, variance `2b²`), by inverse-CDF.
///
/// # Panics
///
/// Panics on a non-positive scale.
pub fn sample_laplace<R: RngCore + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(
        scale > 0.0 && scale.is_finite(),
        "Laplace scale must be positive, got {scale}"
    );
    // u uniform in (−1/2, 1/2]; guard the open endpoint to avoid ln(0).
    let u: f64 = rng.random::<f64>() - 0.5;
    let u = if u == -0.5 { -0.499_999_999 } else { u };
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Variance of `Lap(scale)`: `2·scale²`.
#[must_use]
pub fn laplace_variance(scale: f64) -> f64 {
    2.0 * scale * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match() {
        let mut rng = StdRng::seed_from_u64(121);
        let scale = 3.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(&mut rng, scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var / laplace_variance(scale) - 1.0).abs() < 0.05,
            "var {var}"
        );
    }

    #[test]
    fn symmetric_tails() {
        let mut rng = StdRng::seed_from_u64(122);
        let n = 100_000;
        let pos = (0..n)
            .filter(|_| sample_laplace(&mut rng, 1.0) > 0.0)
            .count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_scale() {
        let mut rng = StdRng::seed_from_u64(123);
        sample_laplace(&mut rng, 0.0);
    }
}
