//! Centralized hierarchical histograms (Hay et al. / Qardaji et al.).
//!
//! The trusted aggregator holds the exact tree of node counts and releases
//! each of the `h` levels with an equal share `ε/h` of the budget: node
//! counts get `Lap(h/ε)` noise (each user affects one count per level, so
//! per-level sensitivity is 1 and the releases compose to ε-DP). This is
//! the "split the error budget" strategy the paper contrasts with local
//! level *sampling* (§4.4): splitting costs `h²` in variance where sampling
//! costs `h`.
//!
//! Constrained inference (the same least-squares pass as the local
//! mechanism) is optional, matching the `HHc_B` rows of Qardaji's Table 3
//! that the paper reproduces as Figure 7.

use rand::RngCore;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::hh::consistency::enforce_consistency;
use ldp_ranges::{RangeError, RangeEstimate};
use ldp_transforms::{decompose_range, exact_log, CompleteTree, FlatTree};

use crate::laplace::{laplace_variance, sample_laplace};

/// The centralized `HH_B` mechanism.
#[derive(Debug, Clone)]
pub struct CdpHierarchical {
    shape: CompleteTree,
    epsilon: Epsilon,
}

impl CdpHierarchical {
    /// Builds the mechanism over `domain = fanout^h`.
    ///
    /// # Errors
    ///
    /// Mirrors the local `HhConfig` validation.
    pub fn new(domain: usize, fanout: usize, epsilon: Epsilon) -> Result<Self, RangeError> {
        if fanout < 2 {
            return Err(RangeError::FanoutTooSmall(fanout));
        }
        let height = exact_log(domain, fanout)
            .ok_or(RangeError::DomainNotPowerOfFanout { domain, fanout })?;
        if height == 0 {
            return Err(RangeError::DomainTooSmall(domain));
        }
        Ok(Self {
            shape: CompleteTree::with_height(fanout, height),
            epsilon,
        })
    }

    /// Per-node Laplace scale: `h/ε` (budget `ε/h` per level).
    #[must_use]
    pub fn noise_scale(&self) -> f64 {
        f64::from(self.shape.height()) / self.epsilon.value()
    }

    /// Theoretical per-node *fraction* variance for a population of `n`:
    /// `2(h/ε)² / n²` — note the `1/N²` scaling of the centralized model
    /// versus `1/N` locally (paper §4.4, "a necessary cost to provide local
    /// privacy guarantees").
    #[must_use]
    pub fn node_variance(&self, n: u64) -> f64 {
        laplace_variance(self.noise_scale()) / (n as f64 * n as f64)
    }

    /// Releases a noisy tree from the exact histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram length differs from the domain.
    pub fn release(
        &self,
        true_counts: &[u64],
        consistent: bool,
        rng: &mut dyn RngCore,
    ) -> CdpTreeEstimate {
        assert_eq!(
            true_counts.len(),
            self.shape.domain(),
            "histogram/domain mismatch"
        );
        let n: u64 = true_counts.iter().sum();
        let n_f = if n == 0 { 1.0 } else { n as f64 };
        let leaf_fracs: Vec<f64> = true_counts.iter().map(|&c| c as f64 / n_f).collect();
        // Exact tree of fractions, then add count-scale noise / N.
        let mut tree = FlatTree::from_leaf_sums(self.shape, &leaf_fracs);
        let scale = self.noise_scale();
        for depth in 1..=self.shape.height() {
            for value in tree.level_mut(depth) {
                *value += sample_laplace(rng, scale) / n_f;
            }
        }
        *tree.get_mut(0, 0) = 1.0;
        if consistent {
            enforce_consistency(&mut tree);
        }
        CdpTreeEstimate { tree, consistent }
    }
}

/// A released centralized hierarchical estimate.
#[derive(Debug, Clone)]
pub struct CdpTreeEstimate {
    tree: FlatTree<f64>,
    consistent: bool,
}

impl CdpTreeEstimate {
    /// Whether constrained inference was applied.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// The underlying noisy tree of fractions.
    #[must_use]
    pub fn tree(&self) -> &FlatTree<f64> {
        &self.tree
    }
}

impl RangeEstimate for CdpTreeEstimate {
    fn domain(&self) -> usize {
        self.tree.shape().domain()
    }

    fn range(&self, a: usize, b: usize) -> f64 {
        let shape = self.tree.shape();
        decompose_range(&shape, a, b)
            .iter()
            .map(|n| *self.tree.get(n.depth, n.index))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_configuration() {
        let eps = Epsilon::new(1.0);
        assert!(CdpHierarchical::new(256, 4, eps).is_ok());
        assert!(CdpHierarchical::new(100, 4, eps).is_err());
        assert!(CdpHierarchical::new(16, 1, eps).is_err());
    }

    #[test]
    fn release_is_accurate_for_large_populations() {
        let eps = Epsilon::new(1.0);
        let mech = CdpHierarchical::new(256, 16, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(131);
        let counts = vec![10_000u64; 256];
        let est = mech.release(&counts, true, &mut rng);
        assert!((est.range(0, 127) - 0.5).abs() < 1e-3);
        assert!((est.range(0, 255) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consistency_is_enforced_when_requested() {
        let eps = Epsilon::new(0.5);
        let mech = CdpHierarchical::new(64, 2, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(132);
        let counts = vec![100u64; 64];
        let est = mech.release(&counts, true, &mut rng);
        let shape = est.tree().shape();
        for d in 0..shape.height() {
            for idx in 0..shape.nodes_at_depth(d) {
                let child_sum: f64 = shape
                    .children(d, idx)
                    .map(|c| *est.tree().get(d + 1, c))
                    .sum();
                assert!((est.tree().get(d, idx) - child_sum).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn variance_scales_inverse_square_population() {
        let eps = Epsilon::new(1.0);
        let mech = CdpHierarchical::new(256, 2, eps).unwrap();
        let v1 = mech.node_variance(1_000);
        let v2 = mech.node_variance(2_000);
        assert!((v1 / v2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_node_variance_matches_theory() {
        let eps = Epsilon::new(1.0);
        let mech = CdpHierarchical::new(16, 2, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(133);
        let counts = vec![1_000u64; 16];
        let n: u64 = counts.iter().sum();
        let truth = 1.0 / 16.0;
        let reps = 2_000;
        let mut sq = 0.0;
        for _ in 0..reps {
            let est = mech.release(&counts, false, &mut rng);
            sq += (est.range(3, 3) - truth) * (est.range(3, 3) - truth);
        }
        let empirical = sq / f64::from(reps);
        let theory = mech.node_variance(n);
        assert!(
            (empirical / theory - 1.0).abs() < 0.15,
            "ratio {}",
            empirical / theory
        );
    }
}
