//! B-adic interval decomposition (Facts 2 and 3 of the paper).
//!
//! A *B-adic* interval has length `B^j` and starts at a multiple of its
//! length (Fact 2); these are exactly the leaf blocks of the nodes of a
//! complete B-ary tree over the domain. Any interval `[a, b]` decomposes
//! into at most `(B − 1)(2·log_B r + 1)` disjoint B-adic intervals where
//! `r = b − a + 1` (Fact 3) — equivalently at most `2(B − 1)` tree nodes per
//! level. Range queries in the hierarchical mechanisms are answered by
//! summing the estimates of these nodes.

use crate::tree::CompleteTree;

/// One node of a B-adic decomposition, identified by tree coordinates.
///
/// `depth` counts down from the root (0) to the leaves (`h`); `index` is the
/// left-to-right position within that depth. The node covers the leaf block
/// `[index·B^{h−depth}, (index+1)·B^{h−depth})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DyadicNode {
    /// Depth from the root.
    pub depth: u32,
    /// Left-to-right index among nodes at this depth.
    pub index: usize,
}

impl DyadicNode {
    /// Leaf interval covered by this node within `shape`.
    #[inline]
    pub fn block(&self, shape: &CompleteTree) -> std::ops::Range<usize> {
        shape.block_range(self.depth, self.index)
    }
}

/// Decomposes the inclusive range `[a, b]` into disjoint B-adic nodes of the
/// complete B-ary tree `shape`, returned in left-to-right block order.
///
/// The decomposition is minimal in node count and peels at most `B − 1`
/// nodes from each fringe per level, so it meets the Fact 3 bound of
/// `(B − 1)(2·log_B r + 1)` nodes.
///
/// # Panics
///
/// Panics if `a > b` or `b` is outside the domain.
pub fn decompose_range(shape: &CompleteTree, a: usize, b: usize) -> Vec<DyadicNode> {
    let domain = shape.domain();
    assert!(
        a <= b && b < domain,
        "invalid range [{a}, {b}] for domain {domain}"
    );
    let fanout = shape.fanout();

    let mut nodes = Vec::new();
    // Work half-open over leaf positions, peeling unit blocks of growing
    // size from both fringes until each fringe aligns with the next level.
    let mut lo = a;
    let mut hi = b + 1;
    let mut size = 1usize; // current block size
    let mut depth = shape.height(); // depth of nodes with that block size
    while lo < hi {
        let parent = size * fanout;
        while !lo.is_multiple_of(parent) && lo < hi {
            nodes.push(DyadicNode {
                depth,
                index: lo / size,
            });
            lo += size;
        }
        while !hi.is_multiple_of(parent) && lo < hi {
            hi -= size;
            nodes.push(DyadicNode {
                depth,
                index: hi / size,
            });
        }
        if lo >= hi {
            break;
        }
        size = parent;
        depth -= 1;
    }
    nodes.sort_unstable_by_key(|n| n.block(shape).start);
    nodes
}

/// Upper bound of Fact 3 on the number of nodes needed for a range of
/// length `r` under fanout `B`: `(B − 1)(2·log_B r + 1)`.
pub fn fact3_node_bound(fanout: usize, r: usize) -> usize {
    assert!(r >= 1);
    let log = (r as f64).log(fanout as f64).ceil() as usize;
    (fanout - 1) * (2 * log + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(shape: &CompleteTree, nodes: &[DyadicNode]) -> Vec<(usize, usize)> {
        nodes
            .iter()
            .map(|n| {
                let r = n.block(shape);
                (r.start, r.end - 1)
            })
            .collect()
    }

    #[test]
    fn paper_example_d32_b2() {
        // "for D = 32, B = 2, the interval [2, 22] can be decomposed into
        //  [2,3] ∪ [4,7] ∪ [8,15] ∪ [16,19] ∪ [20,21] ∪ [22,22]".
        let shape = CompleteTree::new(2, 32);
        let nodes = decompose_range(&shape, 2, 22);
        assert_eq!(
            blocks(&shape, &nodes),
            vec![(2, 3), (4, 7), (8, 15), (16, 19), (20, 21), (22, 22)]
        );
    }

    #[test]
    fn full_domain_is_root() {
        let shape = CompleteTree::new(4, 256);
        let nodes = decompose_range(&shape, 0, 255);
        assert_eq!(nodes, vec![DyadicNode { depth: 0, index: 0 }]);
    }

    #[test]
    fn point_query_is_single_leaf() {
        let shape = CompleteTree::new(8, 64);
        let nodes = decompose_range(&shape, 37, 37);
        assert_eq!(
            nodes,
            vec![DyadicNode {
                depth: 2,
                index: 37
            }]
        );
    }

    fn check_partition(shape: &CompleteTree, a: usize, b: usize) {
        let nodes = decompose_range(shape, a, b);
        // Blocks must tile [a, b] exactly, in order, without gaps.
        let mut cursor = a;
        for n in &nodes {
            let blk = n.block(shape);
            assert_eq!(blk.start, cursor, "gap/overlap at {cursor} in [{a},{b}]");
            cursor = blk.end;
        }
        assert_eq!(cursor, b + 1);
        // Each block must be B-adic: start divisible by length.
        for n in &nodes {
            let blk = n.block(shape);
            let len = blk.end - blk.start;
            assert_eq!(blk.start % len, 0);
        }
        // Fact 3 node-count bound.
        let r = b - a + 1;
        assert!(
            nodes.len() <= fact3_node_bound(shape.fanout(), r),
            "range [{a},{b}] used {} nodes, bound {}",
            nodes.len(),
            fact3_node_bound(shape.fanout(), r)
        );
        // Per-level bound: at most 2(B-1) nodes per level.
        let mut per_level = std::collections::HashMap::new();
        for n in &nodes {
            *per_level.entry(n.depth).or_insert(0usize) += 1;
        }
        for (&d, &cnt) in &per_level {
            assert!(cnt <= 2 * (shape.fanout() - 1), "depth {d} has {cnt} nodes");
        }
    }

    #[test]
    fn exhaustive_small_domains() {
        for (fanout, domain) in [(2usize, 32usize), (4, 64), (3, 81), (8, 64), (16, 256)] {
            let shape = CompleteTree::new(fanout, domain);
            for a in 0..domain {
                for b in a..domain {
                    check_partition(&shape, a, b);
                }
            }
        }
    }

    #[test]
    fn fact3_bound_values() {
        assert_eq!(fact3_node_bound(2, 1), 1);
        // r = 21 for the paper example: log2 ceil = 5, bound = 11 ≥ 6 used.
        assert_eq!(fact3_node_bound(2, 21), 11);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_reversed_range() {
        let shape = CompleteTree::new(2, 16);
        decompose_range(&shape, 5, 4);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_out_of_domain() {
        let shape = CompleteTree::new(2, 16);
        decompose_range(&shape, 0, 16);
    }
}
