//! Linear transforms and tree decompositions underpinning LDP range-query
//! mechanisms.
//!
//! This crate is a pure-computation substrate with three parts:
//!
//! * [`hadamard`] — the fast Walsh–Hadamard transform (FWHT) and pointwise
//!   entry oracle used by Hadamard Randomized Response (HRR). The transform
//!   is its own inverse up to a factor of `D`, and runs in `O(D log D)`.
//! * [`haar`] — the Discrete Haar wavelet Transform (DHT), both in its
//!   orthonormal matrix form (Figure 3 of the paper) and as the
//!   sum/difference *pyramid* used by the `HaarHRR` mechanism.
//! * [`dyadic`] and [`tree`] — B-adic interval decompositions (Facts 2–3 of
//!   the paper) and flat-array storage for complete B-ary trees, used by the
//!   hierarchical-histogram mechanisms.
//!
//! Everything here is deterministic; randomness lives in the mechanism
//! crates.

pub mod dyadic;
pub mod haar;
pub mod hadamard;
pub mod tree;

pub use dyadic::{decompose_range, DyadicNode};
pub use haar::{haar_forward, haar_forward_scalar, haar_inverse, haar_inverse_scalar, HaarPyramid};
pub use hadamard::{fwht, fwht_inverse, fwht_scalar, hadamard_entry};
pub use tree::{CompleteTree, FlatTree};

/// Returns `log_b(n)` when `n` is an exact power of `b`, and `None`
/// otherwise.
///
/// Used to validate domain sizes: every mechanism in this workspace requires
/// `D = B^h` for some integer height `h`.
///
/// ```
/// assert_eq!(ldp_transforms::exact_log(64, 4), Some(3));
/// assert_eq!(ldp_transforms::exact_log(48, 4), None);
/// ```
pub fn exact_log(n: usize, b: usize) -> Option<u32> {
    if n == 0 || b < 2 {
        return None;
    }
    let mut cur = 1usize;
    let mut log = 0u32;
    while cur < n {
        cur = cur.checked_mul(b)?;
        log += 1;
    }
    (cur == n).then_some(log)
}

/// Integer power `b^e` with overflow checking.
///
/// Panics on overflow: tree shapes in this workspace are always small enough
/// that overflow indicates a logic error rather than a recoverable state.
#[inline]
pub fn ipow(b: usize, e: u32) -> usize {
    b.checked_pow(e).expect("tree dimension overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_log_accepts_exact_powers() {
        assert_eq!(exact_log(1, 2), Some(0));
        assert_eq!(exact_log(2, 2), Some(1));
        assert_eq!(exact_log(1024, 2), Some(10));
        assert_eq!(exact_log(625, 5), Some(4));
        assert_eq!(exact_log(16, 16), Some(1));
    }

    #[test]
    fn exact_log_rejects_non_powers() {
        assert_eq!(exact_log(0, 2), None);
        assert_eq!(exact_log(3, 2), None);
        assert_eq!(exact_log(100, 3), None);
        assert_eq!(exact_log(10, 1), None);
    }

    #[test]
    fn ipow_matches_pow() {
        assert_eq!(ipow(2, 10), 1024);
        assert_eq!(ipow(7, 0), 1);
        assert_eq!(ipow(16, 4), 65536);
    }
}
