//! Discrete Haar wavelet Transform (DHT).
//!
//! Two views of the same decomposition are provided:
//!
//! * [`haar_forward`] / [`haar_inverse`] — the orthonormal matrix form shown
//!   in Figure 3 of the paper. The coefficient of the node with block size
//!   `s` is `(Σ left − Σ right)/√s`, and `c[0] = (Σ x)/√D`.
//! * [`HaarPyramid`] — the *unnormalized* sum/difference pyramid the
//!   `HaarHRR` aggregator actually manipulates: for every internal node `u`
//!   it stores `d_u = (Σ left subtree) − (Σ right subtree)` together with the
//!   overall total. Given the total and all `d_u`, any leaf or range sum is
//!   uniquely determined (`C_left = (s + d)/2`, `C_right = (s − d)/2`), which
//!   is the "consistency by design" property of §4.6: no post-processing is
//!   ever required.

/// Orthonormal forward Haar transform of a length-`2^h` vector.
///
/// Output layout: `c[0]` is the scaling coefficient; the detail coefficient
/// of the node at depth `d` (block size `D/2^d`) and horizontal index `t`
/// lives at `c[2^d + t]`. This matches the row layout of Figure 3.
///
/// Runs in `O(D)` via the sum pyramid.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn haar_forward(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "Haar transform requires a power-of-two length, got {n}"
    );
    let mut out = vec![0.0; n];
    // Ping-pong between two buffers so every pass reads one buffer and
    // writes disjoint slices of the other: no in-place aliasing, so the
    // pairwise loop compiles to straight-line vector code. Each level
    // computes the identical `l ± r` the in-place scalar pass computes,
    // so the coefficients are bit-identical to [`haar_forward_scalar`].
    let mut cur = x.to_vec();
    let mut next = vec![0.0; n / 2];
    let mut width = n; // number of block sums currently held in `cur`
    let mut block = 1usize; // current block size
    while width > 1 {
        let half = width / 2;
        let scale = 1.0 / ((2 * block) as f64).sqrt();
        // Parent nodes at this pass sit at depth log2(half); their
        // coefficient slots are [half, width).
        let (diffs, _) = out[half..].split_at_mut(half);
        for ((pair, sum), diff) in cur[..width]
            .chunks_exact(2)
            .zip(next[..half].iter_mut())
            .zip(diffs.iter_mut())
        {
            let (l, r) = (pair[0], pair[1]);
            *diff = (l - r) * scale;
            *sum = l + r;
        }
        std::mem::swap(&mut cur, &mut next);
        width = half;
        block *= 2;
    }
    out[0] = cur[0] / (n as f64).sqrt();
    out
}

/// The in-place reference implementation of [`haar_forward`] — the oracle
/// the buffered version is differential-tested against (bit-identical).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn haar_forward_scalar(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "Haar transform requires a power-of-two length, got {n}"
    );
    let mut out = vec![0.0; n];
    let mut sums = x.to_vec();
    let mut width = n;
    let mut block = 1usize;
    while width > 1 {
        let half = width / 2;
        let scale = 1.0 / ((2 * block) as f64).sqrt();
        for t in 0..half {
            let l = sums[2 * t];
            let r = sums[2 * t + 1];
            out[half + t] = (l - r) * scale;
            sums[t] = l + r;
        }
        width = half;
        block *= 2;
    }
    out[0] = sums[0] / (n as f64).sqrt();
    out
}

/// Orthonormal inverse Haar transform; exact inverse of [`haar_forward`].
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn haar_inverse(c: &[f64]) -> Vec<f64> {
    let n = c.len();
    assert!(
        n.is_power_of_two(),
        "Haar transform requires a power-of-two length, got {n}"
    );
    // Rebuild block sums top-down, starting from the grand total. As in
    // [`haar_forward`], ping-pong buffers replace the in-place backward
    // walk: each pass reads `cur` and writes pairs of `next`, computing
    // the identical `(s ± d)/2` expansions — bit-identical to
    // [`haar_inverse_scalar`].
    let mut cur = vec![0.0; n];
    let mut next = vec![0.0; n];
    cur[0] = c[0] * (n as f64).sqrt();
    let mut width = 1usize; // number of valid block sums
    let mut block = n; // their block size
    while width < n {
        let scale = (block as f64).sqrt();
        for ((pair, &s), &coeff) in next[..2 * width]
            .chunks_exact_mut(2)
            .zip(cur[..width].iter())
            .zip(c[width..2 * width].iter())
        {
            let d = coeff * scale;
            pair[0] = (s + d) / 2.0;
            pair[1] = (s - d) / 2.0;
        }
        std::mem::swap(&mut cur, &mut next);
        width *= 2;
        block /= 2;
    }
    cur
}

/// The in-place reference implementation of [`haar_inverse`] — the oracle
/// the buffered version is differential-tested against (bit-identical).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn haar_inverse_scalar(c: &[f64]) -> Vec<f64> {
    let n = c.len();
    assert!(
        n.is_power_of_two(),
        "Haar transform requires a power-of-two length, got {n}"
    );
    let mut sums = vec![0.0; n];
    sums[0] = c[0] * (n as f64).sqrt();
    let mut width = 1usize;
    let mut block = n;
    while width < n {
        let scale = (block as f64).sqrt();
        // Expand in place from the back so we do not clobber unread sums.
        for t in (0..width).rev() {
            let s = sums[t];
            let d = c[width + t] * scale;
            sums[2 * t] = (s + d) / 2.0;
            sums[2 * t + 1] = (s - d) / 2.0;
        }
        width *= 2;
        block /= 2;
    }
    sums
}

/// Unnormalized Haar sum/difference pyramid over a power-of-two domain.
///
/// `diffs[d][t]` holds `d_u = Σ(left subtree) − Σ(right subtree)` for the
/// internal node at depth `d ∈ [0, h)` and index `t ∈ [0, 2^d)`; `total`
/// holds `Σ x`. This is the natural state of the `HaarHRR` aggregator: the
/// LDP protocol produces one unbiased `d_u` estimate per node, and the
/// hardcoded 0-th coefficient provides `total`.
#[derive(Debug, Clone, PartialEq)]
pub struct HaarPyramid {
    height: u32,
    total: f64,
    diffs: Vec<Vec<f64>>,
}

impl HaarPyramid {
    /// Builds the exact pyramid of a length-`2^h` leaf vector in `O(D)`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_leaves(x: &[f64]) -> Self {
        let n = x.len();
        assert!(
            n.is_power_of_two(),
            "HaarPyramid requires a power-of-two length, got {n}"
        );
        let height = n.trailing_zeros();
        let mut diffs: Vec<Vec<f64>> = (0..height).map(|d| vec![0.0; 1 << d]).collect();
        // Ping-pong buffers (see [`haar_forward`]): each level reads
        // disjoint pairs and writes straight-line sum/diff streams, which
        // vectorizes; the arithmetic per node is unchanged, so the
        // pyramid is bit-identical to [`HaarPyramid::from_leaves_scalar`].
        let mut cur = x.to_vec();
        let mut next = vec![0.0; n / 2];
        for d in (0..height).rev() {
            let width = 1usize << d;
            for ((pair, sum), diff) in cur[..2 * width]
                .chunks_exact(2)
                .zip(next[..width].iter_mut())
                .zip(diffs[d as usize].iter_mut())
            {
                let (l, r) = (pair[0], pair[1]);
                *diff = l - r;
                *sum = l + r;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        Self {
            height,
            total: cur[0],
            diffs,
        }
    }

    /// The in-place reference implementation of
    /// [`HaarPyramid::from_leaves`] — the oracle the buffered version is
    /// differential-tested against (bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_leaves_scalar(x: &[f64]) -> Self {
        let n = x.len();
        assert!(
            n.is_power_of_two(),
            "HaarPyramid requires a power-of-two length, got {n}"
        );
        let height = n.trailing_zeros();
        let mut diffs: Vec<Vec<f64>> = (0..height).map(|d| vec![0.0; 1 << d]).collect();
        let mut sums = x.to_vec();
        for d in (0..height).rev() {
            let width = 1usize << d;
            for t in 0..width {
                let l = sums[2 * t];
                let r = sums[2 * t + 1];
                diffs[d as usize][t] = l - r;
                sums[t] = l + r;
            }
        }
        Self {
            height,
            total: sums[0],
            diffs,
        }
    }

    /// Assembles a pyramid from externally estimated parts (the aggregator
    /// path: `total` from the hardcoded coefficient, `diffs` from noisy
    /// reports).
    ///
    /// # Panics
    ///
    /// Panics unless `diffs.len() == height` and `diffs[d].len() == 2^d`.
    pub fn from_parts(height: u32, total: f64, diffs: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            diffs.len(),
            height as usize,
            "need one diff level per tree depth"
        );
        for (d, level) in diffs.iter().enumerate() {
            assert_eq!(level.len(), 1 << d, "level {d} must have 2^{d} nodes");
        }
        Self {
            height,
            total,
            diffs,
        }
    }

    /// Domain size `D = 2^h`.
    #[inline]
    pub fn len(&self) -> usize {
        1 << self.height
    }

    /// True only for the degenerate zero-height pyramid over one leaf.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tree height `h = log2 D`.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Grand total `Σ x`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Difference value of the internal node at `depth` and index `t`.
    #[inline]
    pub fn diff(&self, depth: u32, t: usize) -> f64 {
        self.diffs[depth as usize][t]
    }

    /// Mutable access for the aggregator while it fills in estimates.
    #[inline]
    pub fn diff_mut(&mut self, depth: u32, t: usize) -> &mut f64 {
        &mut self.diffs[depth as usize][t]
    }

    /// Reconstructs a single leaf value in `O(log D)`.
    pub fn leaf(&self, i: usize) -> f64 {
        assert!(i < self.len());
        let mut s = self.total;
        let mut t = 0usize;
        for d in 0..self.height {
            let d_u = self.diffs[d as usize][t];
            let bit = (i >> (self.height - 1 - d)) & 1;
            s = if bit == 0 {
                (s + d_u) / 2.0
            } else {
                (s - d_u) / 2.0
            };
            t = 2 * t + bit;
        }
        s
    }

    /// Reconstructs every leaf in `O(D)`.
    pub fn leaves(&self) -> Vec<f64> {
        let n = self.len();
        // Ping-pong expansion (see [`haar_inverse`]); bit-identical to
        // [`HaarPyramid::leaves_scalar`].
        let mut cur = vec![0.0; n];
        let mut next = vec![0.0; n];
        cur[0] = self.total;
        let mut width = 1usize;
        for d in 0..self.height {
            for ((pair, &s), &d_u) in next[..2 * width]
                .chunks_exact_mut(2)
                .zip(cur[..width].iter())
                .zip(self.diffs[d as usize].iter())
            {
                pair[0] = (s + d_u) / 2.0;
                pair[1] = (s - d_u) / 2.0;
            }
            std::mem::swap(&mut cur, &mut next);
            width *= 2;
        }
        cur
    }

    /// The in-place reference implementation of [`HaarPyramid::leaves`] —
    /// the oracle the buffered version is differential-tested against
    /// (bit-identical).
    pub fn leaves_scalar(&self) -> Vec<f64> {
        let n = self.len();
        let mut sums = vec![0.0; n];
        sums[0] = self.total;
        let mut width = 1usize;
        for d in 0..self.height {
            for t in (0..width).rev() {
                let s = sums[t];
                let d_u = self.diffs[d as usize][t];
                sums[2 * t] = (s + d_u) / 2.0;
                sums[2 * t + 1] = (s - d_u) / 2.0;
            }
            width *= 2;
        }
        sums
    }

    /// Sum of leaves in the inclusive range `[a, b]`, in `O(log D)`.
    ///
    /// Only nodes *cut* by the range contribute recursion (at most two per
    /// level), mirroring the "at most 2h coefficients" argument of §4.6.
    ///
    /// # Panics
    ///
    /// Panics if `a > b` or `b` is outside the domain.
    pub fn range_sum(&self, a: usize, b: usize) -> f64 {
        assert!(
            a <= b && b < self.len(),
            "invalid range [{a}, {b}] for domain {}",
            self.len()
        );
        self.range_rec(0, 0, self.total, a, b + 1)
    }

    fn range_rec(&self, depth: u32, t: usize, node_sum: f64, a: usize, b: usize) -> f64 {
        let block = 1usize << (self.height - depth);
        let lo = t * block;
        let hi = lo + block;
        let (qa, qb) = (a.max(lo), b.min(hi));
        if qa >= qb {
            return 0.0;
        }
        if qa == lo && qb == hi {
            return node_sum;
        }
        let d_u = self.diffs[depth as usize][t];
        let left = (node_sum + d_u) / 2.0;
        let right = (node_sum - d_u) / 2.0;
        self.range_rec(depth + 1, 2 * t, left, a, b)
            + self.range_rec(depth + 1, 2 * t + 1, right, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn forward_matches_figure_3_row_layout() {
        // Item 0 (one-hot) should produce exactly row 0 of Figure 3:
        // 1/√8 · [1, 1, √2, 0, 2, 0, 0, 0].
        let mut x = vec![0.0; 8];
        x[0] = 1.0;
        let c = haar_forward(&x);
        let s = 1.0 / 8f64.sqrt();
        let expected = [1.0, 1.0, 2f64.sqrt(), 0.0, 2.0, 0.0, 0.0, 0.0].map(|v| v * s);
        for (got, want) in c.iter().zip(expected.iter()) {
            assert!(close(*got, *want), "got {got}, want {want}");
        }
    }

    #[test]
    fn forward_matches_figure_3_row_5() {
        // Row 5 of Figure 3: 1/√8 · [1, −1, 0, √2, 0, 0, −2, 0].
        let mut x = vec![0.0; 8];
        x[5] = 1.0;
        let c = haar_forward(&x);
        let s = 1.0 / 8f64.sqrt();
        let expected = [1.0, -1.0, 0.0, 2f64.sqrt(), 0.0, 0.0, -2.0, 0.0].map(|v| v * s);
        for (got, want) in c.iter().zip(expected.iter()) {
            assert!(close(*got, *want), "got {got}, want {want}");
        }
    }

    #[test]
    fn roundtrip() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 37 + 5) % 23) as f64 / 7.0).collect();
        let c = haar_forward(&x);
        let y = haar_inverse(&c);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn transform_preserves_l2_norm() {
        // Orthonormality (Parseval).
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).cos()).collect();
        let c = haar_forward(&x);
        let nx: f64 = x.iter().map(|v| v * v).sum();
        let nc: f64 = c.iter().map(|v| v * v).sum();
        assert!(close(nx, nc));
    }

    #[test]
    fn pyramid_matches_direct_sums() {
        let x = [0.1, 0.15, 0.23, 0.12, 0.2, 0.05, 0.07, 0.08];
        let p = HaarPyramid::from_leaves(&x);
        assert!(close(p.total(), x.iter().sum()));
        // Root diff: first half minus second half.
        let first: f64 = x[..4].iter().sum();
        let second: f64 = x[4..].iter().sum();
        assert!(close(p.diff(0, 0), first - second));
        // A depth-2 node: leaves 4,5.
        assert!(close(p.diff(2, 2), x[4] - x[5]));
    }

    #[test]
    fn pyramid_leaf_reconstruction() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64).sqrt()).collect();
        let p = HaarPyramid::from_leaves(&x);
        for (i, &v) in x.iter().enumerate() {
            assert!(close(p.leaf(i), v), "leaf {i}");
        }
        let all = p.leaves();
        for (a, b) in all.iter().zip(x.iter()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn pyramid_range_sums_match_prefix_sums() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 13) % 7) as f64).collect();
        let p = HaarPyramid::from_leaves(&x);
        for a in 0..32 {
            for b in a..32 {
                let truth: f64 = x[a..=b].iter().sum();
                assert!(close(p.range_sum(a, b), truth), "range [{a},{b}]");
            }
        }
    }

    #[test]
    fn from_parts_roundtrips_from_leaves() {
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let p = HaarPyramid::from_leaves(&x);
        let q = HaarPyramid::from_parts(
            p.height(),
            p.total(),
            (0..p.height())
                .map(|d| (0..1usize << d).map(|t| p.diff(d, t)).collect())
                .collect(),
        );
        assert_eq!(p, q);
    }

    #[test]
    fn single_leaf_domain() {
        let p = HaarPyramid::from_leaves(&[7.0]);
        assert_eq!(p.len(), 1);
        assert!(close(p.range_sum(0, 0), 7.0));
        assert!(close(p.leaf(0), 7.0));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn pyramid_rejects_bad_length() {
        HaarPyramid::from_leaves(&[1.0, 2.0, 3.0]);
    }
}
