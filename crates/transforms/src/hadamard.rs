//! Fast Walsh–Hadamard transform (FWHT).
//!
//! The Hadamard matrix `φ` of dimension `D = 2^k` has entries
//! `φ[i][j] = (−1)^{⟨i, j⟩}` where `⟨i, j⟩` counts the positions on which
//! the binary representations of `i` and `j` are both 1 (paper §3.2,
//! Figure 1 shows the `D = 8` instance, there scaled by `1/√D`).
//!
//! We work with the *unnormalized* ±1 matrix throughout, which is what the
//! HRR mechanism transmits; the `1/√D` or `1/D` factors are restored by the
//! caller where needed. The unnormalized matrix satisfies `φ·φ = D·I`, so
//! [`fwht_inverse`] is [`fwht`] followed by division by `D`.

/// Single entry of the unnormalized Hadamard matrix: `(−1)^{popcount(i & j)}`.
///
/// This is the value a user with input `i` computes for a sampled column
/// `j` in HRR — an `O(1)` operation, so clients never materialize the
/// matrix.
///
/// ```
/// use ldp_transforms::hadamard_entry;
/// // Row 3 of the D=8 matrix from Figure 1 of the paper.
/// let row: Vec<i8> = (0..8).map(|j| hadamard_entry(3, j)).collect();
/// assert_eq!(row, [1, -1, -1, 1, 1, -1, -1, 1]);
/// ```
#[inline]
pub fn hadamard_entry(i: usize, j: usize) -> i8 {
    if (i & j).count_ones().is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// Butterfly passes with spans up to this many lanes run entirely inside
/// one resident chunk before the array is traversed again — 64 `f64`s =
/// 512 B, a handful of cache lines, so the `log₂ 64 = 6` cheapest passes
/// cost one pass over memory instead of six.
const FWHT_BLOCK: usize = 64;

/// In-place fast Walsh–Hadamard transform of a length-`2^k` slice.
///
/// Computes `x ← φ·x` for the unnormalized ±1 Hadamard matrix in
/// `O(D log D)` time and no extra space. Applying it twice multiplies the
/// input by `D`.
///
/// The implementation blocks the first `log₂` `FWHT_BLOCK` butterfly
/// passes into cache-resident chunks (with an unrolled radix-4 base case)
/// and runs the remaining passes over contiguous half-slices so the inner
/// loops auto-vectorize. Every butterfly still combines exactly the same
/// two operands in the same order as the textbook triple loop (each pair
/// `(i, i + half)` is disjoint from every other pair of its pass), so the
/// output is **bit-identical** to [`fwht_scalar`] — the differential
/// tests assert this, not a tolerance.
///
/// # Panics
///
/// Panics if the length is not a power of two (the transform is undefined
/// otherwise).
pub fn fwht(data: &mut [f64]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FWHT requires a power-of-two length, got {n}"
    );
    if n <= FWHT_BLOCK {
        fwht_block(data);
        return;
    }
    // Stage 1: all passes with half < FWHT_BLOCK, one resident chunk at
    // a time (butterflies with a span under the chunk length never cross
    // a chunk boundary).
    for chunk in data.chunks_exact_mut(FWHT_BLOCK) {
        fwht_block(chunk);
    }
    // Stage 2: the remaining long-span passes. Splitting each block into
    // its two halves turns the butterfly into two parallel contiguous
    // streams, which the compiler vectorizes.
    let mut half = FWHT_BLOCK;
    while half < n {
        let step = half * 2;
        for block in data.chunks_exact_mut(step) {
            let (lo, hi) = block.split_at_mut(half);
            for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
                let a = *l;
                let b = *h;
                *l = a + b;
                *h = a - b;
            }
        }
        half = step;
    }
}

/// All butterfly passes of one cache-resident block (`len ≤` `FWHT_BLOCK`,
/// a power of two): an unrolled radix-4 base case fusing the `half = 1`
/// and `half = 2` passes, then half-split passes as in the main loop.
fn fwht_block(data: &mut [f64]) {
    let n = data.len();
    if n == 1 {
        return;
    }
    if n == 2 {
        let (a, b) = (data[0], data[1]);
        data[0] = a + b;
        data[1] = a - b;
        return;
    }
    // Fused half=1 + half=2 passes, four lanes at a time. The locals hold
    // the exact intermediates the two scalar passes would have stored.
    for q in data.chunks_exact_mut(4) {
        let (a, b, c, d) = (q[0], q[1], q[2], q[3]);
        let (ab, amb) = (a + b, a - b);
        let (cd, cmd) = (c + d, c - d);
        q[0] = ab + cd;
        q[1] = amb + cmd;
        q[2] = ab - cd;
        q[3] = amb - cmd;
    }
    let mut half = 4;
    while half < n {
        let step = half * 2;
        for block in data.chunks_exact_mut(step) {
            let (lo, hi) = block.split_at_mut(half);
            for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
                let a = *l;
                let b = *h;
                *l = a + b;
                *h = a - b;
            }
        }
        half = step;
    }
}

/// The textbook triple-loop FWHT — the reference oracle the blocked
/// [`fwht`] is differential-tested against (bit-identical, not within a
/// tolerance). Kept unoptimized on purpose; use [`fwht`] everywhere else.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fwht_scalar(data: &mut [f64]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FWHT requires a power-of-two length, got {n}"
    );
    let mut half = 1;
    while half < n {
        let step = half * 2;
        for block in (0..n).step_by(step) {
            for i in block..block + half {
                let a = data[i];
                let b = data[i + half];
                data[i] = a + b;
                data[i + half] = a - b;
            }
        }
        half = step;
    }
}

/// In-place inverse Walsh–Hadamard transform: `x ← φ⁻¹·x = (1/D)·φ·x`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fwht_inverse(data: &mut [f64]) {
    fwht(data);
    let scale = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v *= scale;
    }
}

/// Returns column `j` of the unnormalized Hadamard matrix as ±1 values.
///
/// Useful for tests and for the aggregator-side decoding path that scatters
/// a single reported coefficient back over the original domain.
pub fn hadamard_column(dim: usize, j: usize) -> Vec<i8> {
    assert!(dim.is_power_of_two());
    assert!(j < dim);
    (0..dim).map(|i| hadamard_entry(i, j)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_transform(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| (0..n).map(|j| f64::from(hadamard_entry(i, j)) * x[j]).sum())
            .collect()
    }

    #[test]
    fn matches_figure_1_matrix() {
        // Figure 1 of the paper (scaled by sqrt(8)).
        let expected: [[i8; 8]; 8] = [
            [1, 1, 1, 1, 1, 1, 1, 1],
            [1, -1, 1, -1, 1, -1, 1, -1],
            [1, 1, -1, -1, 1, 1, -1, -1],
            [1, -1, -1, 1, 1, -1, -1, 1],
            [1, 1, 1, 1, -1, -1, -1, -1],
            [1, -1, 1, -1, -1, 1, -1, 1],
            [1, 1, -1, -1, -1, -1, 1, 1],
            // Note: the arXiv rendering of Figure 1 garbles row 7; the
            // Sylvester construction gives ⟨7,3⟩ = 2, hence +1 in column 3.
            [1, -1, -1, 1, -1, 1, 1, -1],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &e) in row.iter().enumerate() {
                assert_eq!(hadamard_entry(i, j), e, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn fwht_matches_naive() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let mut fast = x.clone();
        fwht(&mut fast);
        let slow = naive_transform(&x);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fwht_involution_up_to_scale() {
        let x: Vec<f64> = (0..64).map(|i| (i * i % 17) as f64).collect();
        let mut y = x.clone();
        fwht(&mut y);
        fwht_inverse(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_of_basis_vector_is_column() {
        let d = 32;
        for v in [0usize, 1, 7, 31] {
            let mut e = vec![0.0; d];
            e[v] = 1.0;
            fwht(&mut e);
            let col = hadamard_column(d, v);
            for (a, b) in e.iter().zip(col.iter()) {
                assert!((a - f64::from(*b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rows_are_orthogonal() {
        let d = 16;
        for i in 0..d {
            for j in 0..d {
                let dot: i32 = (0..d)
                    .map(|k| i32::from(hadamard_entry(i, k)) * i32::from(hadamard_entry(j, k)))
                    .sum();
                assert_eq!(dot, if i == j { d as i32 } else { 0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![0.0; 6];
        fwht(&mut x);
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![42.0];
        fwht(&mut x);
        assert_eq!(x, vec![42.0]);
        fwht_inverse(&mut x);
        assert_eq!(x, vec![42.0]);
    }
}
