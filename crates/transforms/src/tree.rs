//! Complete B-ary tree geometry and flat-array storage.
//!
//! Both the hierarchical-histogram and Haar mechanisms impose a complete
//! B-ary tree over the domain `[D]` with `D = B^h`. This module owns all of
//! the index arithmetic — node counts per depth, flat offsets, parent/child
//! navigation, leaf-to-root paths — so mechanism code never does raw
//! power-of-B arithmetic inline.
//!
//! Convention used across the whole workspace: **depth** `d` counts *down
//! from the root*, so the root is `d = 0` and the leaves are `d = h`. The
//! paper's "level `l`" (counting up from the leaves) is `l = h − d`.

use crate::{exact_log, ipow};

/// Shape of a complete B-ary tree over a domain of size `fanout^height`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteTree {
    fanout: usize,
    height: u32,
}

impl CompleteTree {
    /// Builds the tree shape for `domain = fanout^h`.
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2` or `domain` is not an exact power of `fanout`
    /// — mechanisms validate domains at construction, so reaching this
    /// indicates a caller bug.
    pub fn new(fanout: usize, domain: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2, got {fanout}");
        let height = exact_log(domain, fanout)
            .unwrap_or_else(|| panic!("domain {domain} is not a power of fanout {fanout}"));
        Self { fanout, height }
    }

    /// Builds a tree shape directly from fanout and height.
    pub fn with_height(fanout: usize, height: u32) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2, got {fanout}");
        // Validate that the domain fits in a usize.
        let _ = ipow(fanout, height);
        Self { fanout, height }
    }

    /// Branching factor `B`.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Height `h` (number of edges on a root-to-leaf path).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Domain size `D = B^h` (equivalently, the number of leaves).
    #[inline]
    pub fn domain(&self) -> usize {
        ipow(self.fanout, self.height)
    }

    /// Number of nodes at depth `d`: `B^d`.
    #[inline]
    pub fn nodes_at_depth(&self, depth: u32) -> usize {
        debug_assert!(depth <= self.height);
        ipow(self.fanout, depth)
    }

    /// Flat-array offset of the first node at depth `d`:
    /// `(B^d − 1)/(B − 1)`.
    #[inline]
    pub fn depth_offset(&self, depth: u32) -> usize {
        (ipow(self.fanout, depth) - 1) / (self.fanout - 1)
    }

    /// Total number of nodes in the tree: `(B^{h+1} − 1)/(B − 1)`.
    #[inline]
    pub fn total_nodes(&self) -> usize {
        self.depth_offset(self.height + 1)
    }

    /// Number of leaves covered by one node at depth `d`: `B^{h−d}`.
    #[inline]
    pub fn block_len(&self, depth: u32) -> usize {
        debug_assert!(depth <= self.height);
        ipow(self.fanout, self.height - depth)
    }

    /// Leaf interval `[start, end)` covered by node `(depth, index)`.
    #[inline]
    pub fn block_range(&self, depth: u32, index: usize) -> std::ops::Range<usize> {
        let len = self.block_len(depth);
        index * len..(index + 1) * len
    }

    /// Index of the ancestor of `leaf` at depth `d`.
    #[inline]
    pub fn ancestor_at_depth(&self, leaf: usize, depth: u32) -> usize {
        debug_assert!(leaf < self.domain());
        leaf / self.block_len(depth)
    }

    /// Parent coordinates of a non-root node.
    #[inline]
    pub fn parent(&self, depth: u32, index: usize) -> (u32, usize) {
        debug_assert!(depth > 0, "root has no parent");
        (depth - 1, index / self.fanout)
    }

    /// Indices of the children of a non-leaf node (all at `depth + 1`).
    #[inline]
    pub fn children(&self, depth: u32, index: usize) -> std::ops::Range<usize> {
        debug_assert!(depth < self.height, "leaves have no children");
        index * self.fanout..(index + 1) * self.fanout
    }

    /// Node indices along the path of `leaf`, from root (depth 0) to leaf
    /// (depth h): element `d` is the index of the depth-`d` ancestor.
    pub fn path_of_leaf(&self, leaf: usize) -> Vec<usize> {
        (0..=self.height)
            .map(|d| self.ancestor_at_depth(leaf, d))
            .collect()
    }
}

/// Dense per-node storage for a [`CompleteTree`], addressed by
/// `(depth, index)`.
///
/// Backing layout is breadth-first: the root at slot 0, then each depth
/// contiguously. Mechanisms use this for per-node frequency estimates and
/// for the constrained-inference passes, both of which walk whole levels —
/// the contiguous layout keeps those passes cache-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTree<T> {
    shape: CompleteTree,
    data: Vec<T>,
}

impl<T: Clone + Default> FlatTree<T> {
    /// Allocates a tree filled with `T::default()`.
    pub fn new(shape: CompleteTree) -> Self {
        Self {
            shape,
            data: vec![T::default(); shape.total_nodes()],
        }
    }
}

impl<T> FlatTree<T> {
    /// The tree shape.
    #[inline]
    pub fn shape(&self) -> CompleteTree {
        self.shape
    }

    #[inline]
    fn slot(&self, depth: u32, index: usize) -> usize {
        debug_assert!(depth <= self.shape.height);
        debug_assert!(index < self.shape.nodes_at_depth(depth));
        self.shape.depth_offset(depth) + index
    }

    /// Reference to the value at `(depth, index)`.
    #[inline]
    pub fn get(&self, depth: u32, index: usize) -> &T {
        &self.data[self.slot(depth, index)]
    }

    /// Mutable reference to the value at `(depth, index)`.
    #[inline]
    pub fn get_mut(&mut self, depth: u32, index: usize) -> &mut T {
        let s = self.slot(depth, index);
        &mut self.data[s]
    }

    /// All nodes at one depth, ordered left to right.
    #[inline]
    pub fn level(&self, depth: u32) -> &[T] {
        let start = self.shape.depth_offset(depth);
        &self.data[start..start + self.shape.nodes_at_depth(depth)]
    }

    /// Mutable view of all nodes at one depth.
    #[inline]
    pub fn level_mut(&mut self, depth: u32) -> &mut [T] {
        let start = self.shape.depth_offset(depth);
        let n = self.shape.nodes_at_depth(depth);
        &mut self.data[start..start + n]
    }

    /// The leaf level (depth `h`).
    #[inline]
    pub fn leaves(&self) -> &[T] {
        self.level(self.shape.height)
    }

    /// Consumes the tree, returning the breadth-first backing storage.
    pub fn into_raw(self) -> Vec<T> {
        self.data
    }
}

impl FlatTree<f64> {
    /// Builds a tree whose leaves are `leaf_values` and whose internal nodes
    /// are exact subtree sums — the "dyadic decomposition with internal node
    /// weights" of Figure 2(a).
    pub fn from_leaf_sums(shape: CompleteTree, leaf_values: &[f64]) -> Self {
        assert_eq!(
            leaf_values.len(),
            shape.domain(),
            "leaf count must equal domain size"
        );
        let mut tree = Self {
            shape,
            data: vec![0.0; shape.total_nodes()],
        };
        tree.level_mut(shape.height()).copy_from_slice(leaf_values);
        for depth in (0..shape.height()).rev() {
            for idx in 0..shape.nodes_at_depth(depth) {
                let sum: f64 = shape
                    .children(depth, idx)
                    .map(|c| *tree.get(depth + 1, c))
                    .sum();
                *tree.get_mut(depth, idx) = sum;
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_arithmetic_binary() {
        let t = CompleteTree::new(2, 8);
        assert_eq!(t.height(), 3);
        assert_eq!(t.domain(), 8);
        assert_eq!(t.nodes_at_depth(0), 1);
        assert_eq!(t.nodes_at_depth(3), 8);
        assert_eq!(t.depth_offset(0), 0);
        assert_eq!(t.depth_offset(1), 1);
        assert_eq!(t.depth_offset(2), 3);
        assert_eq!(t.depth_offset(3), 7);
        assert_eq!(t.total_nodes(), 15);
        assert_eq!(t.block_len(0), 8);
        assert_eq!(t.block_len(3), 1);
        assert_eq!(t.block_range(1, 1), 4..8);
    }

    #[test]
    fn shape_arithmetic_quaternary() {
        let t = CompleteTree::new(4, 64);
        assert_eq!(t.height(), 3);
        assert_eq!(t.total_nodes(), 1 + 4 + 16 + 64);
        assert_eq!(t.children(1, 2), 8..12);
        assert_eq!(t.parent(2, 9), (1, 2));
    }

    #[test]
    fn paths_are_consistent_with_ancestors() {
        let t = CompleteTree::new(2, 16);
        for leaf in 0..16 {
            let path = t.path_of_leaf(leaf);
            assert_eq!(path.len(), 5);
            assert_eq!(path[0], 0);
            assert_eq!(path[4], leaf);
            for d in 1..=4u32 {
                assert_eq!(t.parent(d, path[d as usize]).1, path[d as usize - 1]);
                assert!(t.block_range(d, path[d as usize]).contains(&leaf));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a power of fanout")]
    fn rejects_non_power_domain() {
        CompleteTree::new(4, 32);
    }

    #[test]
    fn flat_tree_levels_and_slots() {
        let shape = CompleteTree::new(2, 4);
        let mut tree: FlatTree<u32> = FlatTree::new(shape);
        *tree.get_mut(0, 0) = 1;
        *tree.get_mut(1, 0) = 2;
        *tree.get_mut(1, 1) = 3;
        *tree.get_mut(2, 3) = 9;
        assert_eq!(tree.level(1), &[2, 3]);
        assert_eq!(tree.leaves(), &[0, 0, 0, 9]);
        assert_eq!(tree.into_raw(), vec![1, 2, 3, 0, 0, 0, 9]);
    }

    #[test]
    fn from_leaf_sums_matches_figure_2a() {
        // Figure 2(a) input vector.
        let leaves = [0.1, 0.15, 0.23, 0.12, 0.2, 0.05, 0.07, 0.08];
        let shape = CompleteTree::new(2, 8);
        let t = FlatTree::from_leaf_sums(shape, &leaves);
        let total: f64 = leaves.iter().sum();
        assert!((*t.get(0, 0) - total).abs() < 1e-12);
        assert!((*t.get(1, 0) - 0.60).abs() < 1e-12);
        assert!((*t.get(1, 1) - 0.40).abs() < 1e-12);
        assert!((*t.get(2, 2) - 0.25).abs() < 1e-12);
    }
}
