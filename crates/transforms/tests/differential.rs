//! Differential suite: the blocked/vectorized transforms against their
//! retained scalar oracles, **bit for bit**.
//!
//! The optimized FWHT reorders butterfly passes into cache-resident
//! blocks and the Haar passes into ping-pong buffers, but every butterfly
//! still combines exactly the same two operands in the same order — each
//! `(i, i + half)` pair is disjoint from every other pair of its pass, so
//! the computation DAG is unchanged and IEEE-754 determinism makes the
//! outputs identical, not merely close. These tests therefore compare
//! `to_bits()`, with no tolerance anywhere.

use ldp_transforms::{
    fwht, fwht_inverse, fwht_scalar, haar_forward, haar_forward_scalar, haar_inverse,
    haar_inverse_scalar, HaarPyramid,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every power of two from 1 to 2^14 — covers the unrolled base cases
/// (1, 2, 4), the in-block sizes (8..64), and multi-block sizes where the
/// two-stage pass split actually engages.
fn sizes() -> Vec<usize> {
    (0..=14).map(|k| 1usize << k).collect()
}

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
}

fn assert_bits_eq(fast: &[f64], slow: &[f64], what: &str, n: usize) {
    assert_eq!(fast.len(), slow.len(), "{what}: length mismatch at n={n}");
    for (i, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: bit mismatch at n={n}, index {i}: {a} vs {b}"
        );
    }
}

#[test]
fn fwht_bit_identical_to_scalar_oracle() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0001);
    for n in sizes() {
        for _ in 0..4 {
            let x = random_vec(&mut rng, n);
            let mut fast = x.clone();
            let mut slow = x;
            fwht(&mut fast);
            fwht_scalar(&mut slow);
            assert_bits_eq(&fast, &slow, "fwht", n);
        }
    }
}

#[test]
fn fwht_inverse_roundtrips_through_blocked_forward() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0002);
    for n in sizes() {
        let x = random_vec(&mut rng, n);
        let mut y = x.clone();
        fwht(&mut y);
        fwht_inverse(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-9, "roundtrip at n={n}: {a} vs {b}");
        }
    }
}

#[test]
fn fwht_adversarial_values_still_bit_identical() {
    // Signed zeros, subnormals, extreme magnitudes, and infinities: even
    // where the arithmetic saturates or underflows, both paths must take
    // the identical IEEE path.
    let specials = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        f64::MIN_POSITIVE / 4.0,
        1e308,
        -1e308,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1.0,
        -1.0,
        std::f64::consts::PI,
    ];
    let mut rng = StdRng::seed_from_u64(0xFA57_0003);
    for n in [4usize, 64, 128, 1024] {
        let x: Vec<f64> = (0..n)
            .map(|_| specials[rng.random_range(0..specials.len())])
            .collect();
        let mut fast = x.clone();
        let mut slow = x;
        fwht(&mut fast);
        fwht_scalar(&mut slow);
        assert_bits_eq(&fast, &slow, "fwht specials", n);
    }
}

#[test]
fn haar_forward_bit_identical_to_scalar_oracle() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0004);
    for n in sizes() {
        for _ in 0..4 {
            let x = random_vec(&mut rng, n);
            assert_bits_eq(
                &haar_forward(&x),
                &haar_forward_scalar(&x),
                "haar_forward",
                n,
            );
        }
    }
}

#[test]
fn haar_inverse_bit_identical_to_scalar_oracle() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0005);
    for n in sizes() {
        let c = random_vec(&mut rng, n);
        assert_bits_eq(
            &haar_inverse(&c),
            &haar_inverse_scalar(&c),
            "haar_inverse",
            n,
        );
    }
}

#[test]
fn haar_roundtrip_through_buffered_paths() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0006);
    for n in sizes() {
        let x = random_vec(&mut rng, n);
        let y = haar_inverse(&haar_forward(&x));
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-9, "haar roundtrip at n={n}");
        }
    }
}

#[test]
fn pyramid_from_leaves_bit_identical_to_scalar_oracle() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0007);
    for n in sizes() {
        let x = random_vec(&mut rng, n);
        let fast = HaarPyramid::from_leaves(&x);
        let slow = HaarPyramid::from_leaves_scalar(&x);
        assert_eq!(
            fast.total().to_bits(),
            slow.total().to_bits(),
            "pyramid total at n={n}"
        );
        assert_eq!(fast.height(), slow.height());
        for d in 0..fast.height() {
            for t in 0..1usize << d {
                assert_eq!(
                    fast.diff(d, t).to_bits(),
                    slow.diff(d, t).to_bits(),
                    "pyramid diff ({d},{t}) at n={n}"
                );
            }
        }
    }
}

#[test]
fn pyramid_leaves_bit_identical_to_scalar_oracle() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0008);
    for n in sizes() {
        let x = random_vec(&mut rng, n);
        let p = HaarPyramid::from_leaves(&x);
        assert_bits_eq(&p.leaves(), &p.leaves_scalar(), "pyramid leaves", n);
    }
}
