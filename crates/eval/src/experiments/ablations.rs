//! Ablations of the paper's design choices (not a paper figure, but each
//! row validates an explicit claim from §4):
//!
//! 1. **Level sampling vs budget splitting** (§4.4): splitting ε over the
//!    levels costs `h²` in variance; sampling costs `h`.
//! 2. **Uniform vs non-uniform level sampling** (Lemma 4.4): uniform
//!    `p_l = 1/h` minimizes `Σ 1/p_l`; skewed weights hurt.
//! 3. **Fanout sweep with/without CI** (§4.4–4.5): optima near `B ≈ 5`
//!    raw and `B ≈ 9` consistent.
//! 4. **Oracle choice** (§5): OUE and HRR level primitives land within a
//!    small factor of each other.

use ldp_freq_oracle::FrequencyOracle;
use ldp_ranges::{HhConfig, HhServer, HhSplitServer};
use ldp_workloads::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;
use crate::experiments::{cauchy_dataset, paper_epsilon, DEFAULT_CENTER};
use crate::metrics::{mean_and_sd, mse_exact, prefix_errors};
use crate::report::{fmt_mse_x1000, Table};

/// Runs all ablations on the smallest configured domain.
#[must_use]
pub fn run(ctx: &EvalContext) -> Table {
    let eps = paper_epsilon();
    let domain = *ctx.domains.iter().min().expect("at least one domain");
    let workload = QueryWorkload::All;
    let mut table = Table::new(
        format!("Ablations of the paper's design choices, D = {domain} (e^eps = 3)"),
        ["ablation", "variant", "mse_x1000", "sd_x1000"]
            .map(String::from)
            .to_vec(),
    );

    let record = |table: &mut Table, ablation: &str, variant: &str, mses: &[f64]| {
        let (mean, sd) = mean_and_sd(mses);
        table.push_row(vec![
            ablation.to_string(),
            variant.to_string(),
            fmt_mse_x1000(mean),
            fmt_mse_x1000(sd),
        ]);
    };

    // 1 + 2: sampling vs splitting, uniform vs skewed weights (B = 2 so
    // the tree is tall and the effects pronounced).
    {
        let config = HhConfig::new(domain, 2, eps).expect("valid config");
        let h = config.height as usize;
        let skewed: Vec<f64> = (0..h).map(|i| 2f64.powi(i as i32)).collect();
        let mut sampling = Vec::new();
        let mut splitting = Vec::new();
        let mut nonuniform = Vec::new();
        for rep in 0..ctx.repetitions {
            let config_id = 0xab10;
            let ds = cauchy_dataset(ctx, domain, DEFAULT_CENTER, config_id, rep);
            let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id, rep));

            let mut s = HhServer::new(config.clone()).expect("server");
            s.absorb_population(ds.counts(), &mut rng).expect("absorb");
            let est = s.estimate_consistent().to_frequency_estimate();
            sampling.push(mse_exact(&prefix_errors(&est, &ds), workload));

            let mut p = HhSplitServer::new(config.clone()).expect("split server");
            p.absorb_population(ds.counts(), &mut rng).expect("absorb");
            let est = p.estimate_consistent().to_frequency_estimate();
            splitting.push(mse_exact(&prefix_errors(&est, &ds), workload));

            let mut w =
                HhServer::with_level_weights(config.clone(), &skewed).expect("weighted server");
            w.absorb_population(ds.counts(), &mut rng).expect("absorb");
            let est = w.estimate_consistent().to_frequency_estimate();
            nonuniform.push(mse_exact(&prefix_errors(&est, &ds), workload));
        }
        record(&mut table, "budget", "level-sampling (paper)", &sampling);
        record(
            &mut table,
            "budget",
            "eps-splitting (centralized-style)",
            &splitting,
        );
        record(
            &mut table,
            "level-weights",
            "uniform 1/h (Lemma 4.4)",
            &sampling,
        );
        record(
            &mut table,
            "level-weights",
            "geometric (skewed to leaves)",
            &nonuniform,
        );
    }

    // 3: fanout sweep, raw vs CI.
    for fanout in crate::runner::valid_fanouts(domain, 64) {
        let config = HhConfig::new(domain, fanout, eps).expect("valid config");
        let mut raw_mses = Vec::new();
        let mut ci_mses = Vec::new();
        for rep in 0..ctx.repetitions {
            let config_id = 0xab20 + fanout as u64;
            let ds = cauchy_dataset(ctx, domain, DEFAULT_CENTER, config_id, rep);
            let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id, rep));
            let mut s = HhServer::new(config.clone()).expect("server");
            s.absorb_population(ds.counts(), &mut rng).expect("absorb");
            raw_mses.push(crate::metrics::mse_strided(
                &s.estimate(),
                &ds,
                workload,
                1 << 14,
            ));
            let est = s.estimate_consistent().to_frequency_estimate();
            ci_mses.push(mse_exact(&prefix_errors(&est, &ds), workload));
        }
        record(&mut table, "fanout", &format!("B={fanout} raw"), &raw_mses);
        record(&mut table, "fanout", &format!("B={fanout} CI"), &ci_mses);
    }

    // 4: level-oracle choice at the CI-optimal fanout region (SUE = basic
    // RAPPOR, the unoptimized baseline OUE improves on).
    for oracle in [
        FrequencyOracle::Oue,
        FrequencyOracle::Hrr,
        FrequencyOracle::Sue,
    ] {
        let config = HhConfig::with_oracle(domain, 4, eps, oracle).expect("valid config");
        let mut mses = Vec::new();
        for rep in 0..ctx.repetitions {
            let config_id = 0xab30 + oracle as u64;
            let ds = cauchy_dataset(ctx, domain, DEFAULT_CENTER, config_id, rep);
            let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id, rep));
            let mut s = HhServer::new(config.clone()).expect("server");
            s.absorb_population(ds.counts(), &mut rng).expect("absorb");
            let est = s.estimate_consistent().to_frequency_estimate();
            mses.push(mse_exact(&prefix_errors(&est, &ds), workload));
        }
        record(&mut table, "oracle", &format!("Tree{oracle}CI(B=4)"), &mses);
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_context;

    fn value(table: &Table, ablation: &str, variant_prefix: &str) -> f64 {
        table
            .rows()
            .iter()
            .find(|r| r[0] == ablation && r[1].starts_with(variant_prefix))
            .unwrap_or_else(|| panic!("row {ablation}/{variant_prefix}"))[2]
            .parse()
            .unwrap()
    }

    #[test]
    fn sampling_beats_splitting_and_uniform_beats_skewed() {
        let mut ctx = tiny_context();
        ctx.repetitions = 3;
        let table = run(&ctx);
        let sampling = value(&table, "budget", "level-sampling");
        let splitting = value(&table, "budget", "eps-splitting");
        assert!(
            splitting > sampling,
            "splitting {splitting} should exceed sampling {sampling}"
        );
        // Lemma 4.4 is a worst-case-bound statement; at tiny scale either
        // variant can win a given draw, but they must be the same order of
        // magnitude and both present in the table.
        let uniform = value(&table, "level-weights", "uniform");
        let skewed = value(&table, "level-weights", "geometric");
        assert!(
            skewed / uniform < 20.0 && uniform / skewed < 20.0,
            "skewed {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn oracle_choices_are_comparable() {
        let ctx = tiny_context();
        let table = run(&ctx);
        let oue = value(&table, "oracle", "TreeOUECI");
        let hrr = value(&table, "oracle", "TreeHRRCI");
        assert!(hrr / oue < 5.0 && oue / hrr < 5.0, "OUE {oue} vs HRR {hrr}");
    }
}
