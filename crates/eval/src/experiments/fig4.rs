//! Figure 4: impact of constrained inference and branching factor `B`.
//!
//! For each domain size and each of a spread of range lengths `r`, the
//! figure plots the MSE over all length-`r` queries as the branching
//! factor varies, for the flat baseline, `TreeOUE`/`TreeHRR` (± CI),
//! `TreeOLH` (± CI, smallest domain only — its decode cost is `O(N·D)`),
//! and `HaarHRR` (shown at `B = 2`; flat shown at `B = D`).

use ldp_freq_oracle::FrequencyOracle;
use ldp_ranges::{FlatConfig, FlatServer, HhConfig, HhServer};
use ldp_workloads::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;
use crate::experiments::{cauchy_dataset, paper_epsilon, DEFAULT_CENTER};
use crate::metrics::{mean_and_sd, mse_exact, mse_strided, prefix_errors};
use crate::report::{fmt_mse_x1000, Table};
use crate::runner::valid_fanouts;

/// Maximum queries enumerated per (length, estimate) for raw trees.
const MAX_QUERIES: u64 = 1 << 14;
/// OLH is included only up to this domain (paper: "we only consider OLH
/// for our initial experiments with small domain size D").
const OLH_DOMAIN_CAP: usize = 1 << 8;

/// Range lengths probed per domain: spanning point queries to nearly the
/// whole domain, as in the figure's columns.
fn lengths_for(domain: usize) -> Vec<usize> {
    let mut rs = vec![1, domain / 64, domain / 8, domain / 2, domain - 1];
    rs.retain(|&r| r >= 1);
    rs.dedup();
    rs
}

struct Series {
    method: String,
    fanout: String,
    r: usize,
    mses: Vec<f64>,
}

/// Runs the experiment and returns one row per (domain, r, method, B).
#[must_use]
pub fn run(ctx: &EvalContext) -> Table {
    let eps = paper_epsilon();
    let mut table = Table::new(
        "Figure 4: MSE (x1000) vs branching factor, per range length r (e^eps = 3)",
        ["D", "r", "method", "B", "mse_x1000", "sd_x1000"]
            .map(String::from)
            .to_vec(),
    );

    for (di, &domain) in ctx.domains.iter().enumerate() {
        let rs = lengths_for(domain);
        let mut series: Vec<Series> = Vec::new();
        let push = |method: &str,
                    fanout: String,
                    r: usize,
                    rep: u32,
                    mse: f64,
                    series: &mut Vec<Series>| {
            if let Some(s) = series
                .iter_mut()
                .find(|s| s.method == method && s.fanout == fanout && s.r == r)
            {
                debug_assert_eq!(s.mses.len(), rep as usize);
                s.mses.push(mse);
            } else {
                series.push(Series {
                    method: method.to_string(),
                    fanout,
                    r,
                    mses: vec![mse],
                });
            }
        };

        for rep in 0..ctx.repetitions {
            let config_id = 0x4000 + di as u64;
            let ds = cauchy_dataset(ctx, domain, DEFAULT_CENTER, config_id, rep);
            let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id ^ 0xf1f1, rep));

            // Flat OUE, displayed as B = D.
            {
                let config = FlatConfig::new(domain, eps).expect("valid flat config");
                let mut server = FlatServer::new(&config).expect("flat server");
                server
                    .absorb_population(ds.counts(), &mut rng)
                    .expect("flat absorb");
                let errors = prefix_errors(&server.estimate(), &ds);
                for &r in &rs {
                    let mse = mse_exact(&errors, QueryWorkload::FixedLength { r });
                    push("FlatOUE", format!("{domain}"), r, rep, mse, &mut series);
                }
            }

            // Tree methods: one server run yields both the raw and the
            // consistent estimate (paired comparison, as in the paper).
            for &fanout in &valid_fanouts(domain, 64) {
                let mut oracles = vec![FrequencyOracle::Oue, FrequencyOracle::Hrr];
                if domain <= OLH_DOMAIN_CAP {
                    oracles.push(FrequencyOracle::Olh);
                }
                for oracle in oracles {
                    let config = HhConfig::with_oracle(domain, fanout, eps, oracle)
                        .expect("valid HH config");
                    let mut server = HhServer::new(config).expect("HH server");
                    server
                        .absorb_population(ds.counts(), &mut rng)
                        .expect("HH absorb");

                    let raw = server.estimate();
                    for &r in &rs {
                        let mse =
                            mse_strided(&raw, &ds, QueryWorkload::FixedLength { r }, MAX_QUERIES);
                        push(
                            &format!("Tree{oracle}"),
                            fanout.to_string(),
                            r,
                            rep,
                            mse,
                            &mut series,
                        );
                    }

                    let ci = server.estimate_consistent().to_frequency_estimate();
                    let errors = prefix_errors(&ci, &ds);
                    for &r in &rs {
                        let mse = mse_exact(&errors, QueryWorkload::FixedLength { r });
                        push(
                            &format!("Tree{oracle}CI"),
                            fanout.to_string(),
                            r,
                            rep,
                            mse,
                            &mut series,
                        );
                    }
                }
            }

            // HaarHRR, displayed as B = 2.
            {
                let mech = ldp_ranges::HaarConfig::new(domain, eps).expect("haar config");
                let mut server = ldp_ranges::HaarHrrServer::new(mech).expect("haar server");
                server
                    .absorb_population(ds.counts(), &mut rng)
                    .expect("haar absorb");
                let flat = server.estimate().to_frequency_estimate();
                let errors = prefix_errors(&flat, &ds);
                for &r in &rs {
                    let mse = mse_exact(&errors, QueryWorkload::FixedLength { r });
                    push("HaarHRR", "2".to_string(), r, rep, mse, &mut series);
                }
            }
        }

        for s in &series {
            let (mean, sd) = mean_and_sd(&s.mses);
            table.push_row(vec![
                domain.to_string(),
                s.r.to_string(),
                s.method.clone(),
                s.fanout.clone(),
                fmt_mse_x1000(mean),
                fmt_mse_x1000(sd),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_context;

    #[test]
    fn produces_all_series() {
        let ctx = tiny_context(); // one domain: 64
        let table = run(&ctx);
        assert!(table.num_rows() > 0);
        // Methods present: flat, TreeOUE(CI), TreeHRR(CI), TreeOLH(CI),
        // HaarHRR.
        let methods: std::collections::HashSet<&str> =
            table.rows().iter().map(|r| r[2].as_str()).collect();
        for m in [
            "FlatOUE",
            "TreeOUE",
            "TreeOUECI",
            "TreeHRR",
            "TreeHRRCI",
            "TreeOLH",
            "HaarHRR",
        ] {
            assert!(methods.contains(m), "missing {m}: {methods:?}");
        }
        // Fanouts for D=64 capped at 64: {2, 4, 8}.
        let fanouts: std::collections::HashSet<&str> = table
            .rows()
            .iter()
            .filter(|r| r[2] == "TreeOUE")
            .map(|r| r[3].as_str())
            .collect();
        assert_eq!(fanouts, ["2", "4", "8"].into_iter().collect());
    }

    #[test]
    fn lengths_cover_spectrum() {
        assert_eq!(lengths_for(256), vec![1, 4, 32, 128, 255]);
        let tiny = lengths_for(4);
        assert!(tiny.contains(&1) && tiny.contains(&2));
    }
}
