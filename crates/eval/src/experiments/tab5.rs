//! Figure 5 (tables a–d): MSE vs ε for arbitrary range queries.
//!
//! Compares the consistent hierarchical methods `HHc_2`, `HHc_4`, `HHc_16`
//! (TreeOUECI, the paper's accuracy pick) against `HaarHRR` as ε sweeps
//! 0.2–1.4, one sub-table per domain size. Values are MSE × 1000, exactly
//! as printed in the paper. `HHc_16` is omitted where 16 does not give an
//! integer-height tree (the paper's `D = 2^22` table likewise drops it).

use ldp_freq_oracle::{Epsilon, FrequencyOracle};
use ldp_ranges::RangeMechanism;
use ldp_workloads::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;
use crate::experiments::{cauchy_dataset, epsilon_sweep, DEFAULT_CENTER};
use crate::metrics::{mean_and_sd, mse_exact, prefix_errors};
use crate::report::{fmt_mse_x1000, Table};
use crate::runner::{run_mechanism, BuiltEstimate};

/// The columns of the paper's tables: `(label, mechanism)`, per domain.
#[must_use]
pub fn methods_for(domain: usize) -> Vec<(String, RangeMechanism)> {
    let mut out = Vec::new();
    for fanout in [2usize, 4, 16] {
        let m = domain.trailing_zeros();
        let k = fanout.trailing_zeros();
        if domain.is_power_of_two() && m.is_multiple_of(k) && (1usize << k) < domain {
            out.push((
                format!("HHc{fanout}"),
                RangeMechanism::Hierarchical {
                    fanout,
                    oracle: FrequencyOracle::Oue,
                    consistent: true,
                },
            ));
        }
    }
    out.push(("HaarHRR".to_string(), RangeMechanism::HaarHrr));
    out
}

/// Shared implementation for Figures 5 and 6 (the latter restricts the
/// workload to prefixes).
#[must_use]
pub fn run_with_workload(ctx: &EvalContext, prefixes_only: bool, title: &str) -> Table {
    let mut headers = vec!["D".to_string(), "eps".to_string()];
    let all_methods = methods_for(*ctx.domains.iter().max().unwrap_or(&256));
    // Use the union of method labels across domains for stable columns.
    let labels: Vec<String> = methods_for(1 << 8).iter().map(|(l, _)| l.clone()).collect();
    debug_assert!(all_methods.len() <= labels.len() + 1);
    headers.extend(labels.iter().cloned());
    let mut table = Table::new(title, headers);

    for (di, &domain) in ctx.domains.iter().enumerate() {
        let methods = methods_for(domain);
        let workload = if prefixes_only {
            QueryWorkload::Prefixes
        } else {
            QueryWorkload::paper_default(domain)
        };
        for (ei, &eps_v) in epsilon_sweep().iter().enumerate() {
            let eps = Epsilon::new(eps_v);
            let config_id = 0x5000 + (di as u64) * 64 + ei as u64 + u64::from(prefixes_only);
            let mut cells: Vec<String> = vec![domain.to_string(), format!("{eps_v}")];
            let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
            for rep in 0..ctx.repetitions {
                let ds = cauchy_dataset(ctx, domain, DEFAULT_CENTER, config_id, rep);
                let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id ^ 0xabcd, rep));
                for (mi, (_, mech)) in methods.iter().enumerate() {
                    let est = run_mechanism(*mech, eps, &ds, &mut rng).expect("mechanism runs");
                    let BuiltEstimate::Frequencies(freqs) = est else {
                        unreachable!("all Figure 5 methods are prefix-decomposable")
                    };
                    per_method[mi].push(mse_exact(&prefix_errors(&freqs, &ds), workload));
                }
            }
            let mut by_label: std::collections::HashMap<&str, f64> =
                std::collections::HashMap::new();
            for ((label, _), mses) in methods.iter().zip(&per_method) {
                let (mean, _sd) = mean_and_sd(mses);
                by_label.insert(label.as_str(), mean);
            }
            for label in &labels {
                cells.push(
                    by_label
                        .get(label.as_str())
                        .map_or_else(|| "-".to_string(), |m| fmt_mse_x1000(*m)),
                );
            }
            table.push_row(cells);
        }
    }
    table
}

/// Runs the Figure 5 experiment (arbitrary range queries).
#[must_use]
pub fn run(ctx: &EvalContext) -> Table {
    run_with_workload(
        ctx,
        false,
        "Figure 5: MSE (x1000) vs epsilon, arbitrary range queries (Cauchy P=0.4)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_context;

    #[test]
    fn method_availability_follows_domain() {
        let labels: Vec<String> = methods_for(1 << 8).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["HHc2", "HHc4", "HHc16", "HaarHRR"]);
        let labels22: Vec<String> = methods_for(1 << 22).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels22, vec!["HHc2", "HHc4", "HaarHRR"]);
        // D = 64: log2 = 6, 16 = 2^4 does not divide.
        let labels64: Vec<String> = methods_for(64).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels64, vec!["HHc2", "HHc4", "HaarHRR"]);
    }

    #[test]
    fn produces_one_row_per_domain_and_eps() {
        let ctx = tiny_context();
        let table = run(&ctx);
        assert_eq!(table.num_rows(), epsilon_sweep().len());
        // HHc16 column shows "-" for D = 64.
        assert!(table.rows().iter().all(|r| r[4] == "-"));
        // Error decreases as eps grows (first vs last row, HHc2 column).
        let first: f64 = table.rows()[0][2].parse().unwrap();
        let last: f64 = table.rows()[epsilon_sweep().len() - 1][2].parse().unwrap();
        assert!(
            first > last,
            "eps=0.2 MSE {first} should exceed eps=1.4 MSE {last}"
        );
    }
}
