//! One module per table/figure of the paper's evaluation (§5).
//!
//! Each module exposes `run(&EvalContext) -> Table`; the `ldp-bench` crate
//! wraps them in binaries (`cargo run -p ldp-bench --release --bin fig4`
//! etc.). Defaults are laptop-scale; set `LDP_FULL_SCALE=1` for the paper's
//! parameters (see `EvalContext`).

pub mod ablations;
pub mod fig4;
pub mod fig8;
pub mod fig9;
pub mod tab5;
pub mod tab6;
pub mod tab7;

use ldp_freq_oracle::Epsilon;
use ldp_workloads::{CauchyParams, Dataset, DistributionKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;

/// The paper's default privacy level: `e^ε = 3` (ε ≈ 1.1).
#[must_use]
pub fn paper_epsilon() -> Epsilon {
    Epsilon::from_exp(3.0)
}

/// The ε sweep of §5.2 (Figures 5 and 6).
#[must_use]
pub fn epsilon_sweep() -> Vec<f64> {
    vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.4]
}

/// Samples the paper's Cauchy population (center `P·D`, scale `D/10`) with
/// a per-(configuration, repetition) deterministic seed.
#[must_use]
pub fn cauchy_dataset(
    ctx: &EvalContext,
    domain: usize,
    center_fraction: f64,
    config_id: u64,
    repetition: u32,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id, repetition));
    Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::centered_at(center_fraction)),
        domain,
        ctx.population,
        &mut rng,
    )
}

/// The paper's default center `P = 0.4`.
pub const DEFAULT_CENTER: f64 = 0.4;

#[cfg(test)]
pub(crate) fn tiny_context() -> EvalContext {
    EvalContext {
        population: 1 << 14,
        repetitions: 2,
        seed: 7,
        domains: vec![64],
        full_scale: false,
    }
}
