//! Figure 8: impact of the input-distribution center `P` on MSE.
//!
//! With all other parameters at their defaults (`e^ε = 3`), the Cauchy
//! center `P·D` sweeps left to right; the paper compares `HaarHRR` against
//! the most accurate consistent hierarchy (`HHc_4`) and finds the accuracy
//! essentially insensitive to the shape for small/medium domains.

use ldp_freq_oracle::FrequencyOracle;
use ldp_ranges::RangeMechanism;
use ldp_workloads::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;
use crate::experiments::{cauchy_dataset, paper_epsilon};
use crate::metrics::{mean_and_sd, mse_exact, prefix_errors};
use crate::report::{fmt_mse_x1000, Table};
use crate::runner::{run_mechanism, BuiltEstimate};

/// Centers swept: `P ∈ {0.1, …, 0.9}` as in the figure's x-axis.
#[must_use]
pub fn centers() -> Vec<f64> {
    (1..=9).map(|i| f64::from(i) / 10.0).collect()
}

/// Runs the experiment; one row per (domain, P).
#[must_use]
pub fn run(ctx: &EvalContext) -> Table {
    let eps = paper_epsilon();
    let mut table = Table::new(
        "Figure 8: MSE (x1000) vs distribution center P (e^eps = 3)",
        ["D", "P", "HHc4", "HaarHRR"].map(String::from).to_vec(),
    );
    let hhc4 = RangeMechanism::Hierarchical {
        fanout: 4,
        oracle: FrequencyOracle::Oue,
        consistent: true,
    };
    for (di, &domain) in ctx.domains.iter().enumerate() {
        let workload = QueryWorkload::paper_default(domain);
        for (pi, &p) in centers().iter().enumerate() {
            let config_id = 0x8000 + (di as u64) * 32 + pi as u64;
            let mut hh_mses = Vec::new();
            let mut haar_mses = Vec::new();
            for rep in 0..ctx.repetitions {
                let ds = cauchy_dataset(ctx, domain, p, config_id, rep);
                let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id ^ 0x8888, rep));
                for (mech, sink) in [
                    (hhc4, &mut hh_mses),
                    (RangeMechanism::HaarHrr, &mut haar_mses),
                ] {
                    let est = run_mechanism(mech, eps, &ds, &mut rng).expect("mechanism runs");
                    let BuiltEstimate::Frequencies(freqs) = est else {
                        unreachable!("both methods are prefix-decomposable")
                    };
                    sink.push(mse_exact(&prefix_errors(&freqs, &ds), workload));
                }
            }
            table.push_row(vec![
                domain.to_string(),
                format!("{p:.1}"),
                fmt_mse_x1000(mean_and_sd(&hh_mses).0),
                fmt_mse_x1000(mean_and_sd(&haar_mses).0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_context;

    #[test]
    fn sweeps_all_centers() {
        let ctx = tiny_context();
        let table = run(&ctx);
        assert_eq!(table.num_rows(), 9);
        // "Consistently small absolute numbers": every cell is a small
        // MSE (×1000 < 50 even at tiny scale).
        for row in table.rows() {
            for cell in &row[2..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v < 50.0, "MSE x1000 = {v} too large");
            }
        }
    }

    #[test]
    fn centers_match_paper_axis() {
        let cs = centers();
        assert_eq!(cs.len(), 9);
        assert!((cs[0] - 0.1).abs() < 1e-12);
        assert!((cs[8] - 0.9).abs() < 1e-12);
    }
}
