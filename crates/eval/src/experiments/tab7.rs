//! Figure 7: the centralized-case comparison (Qardaji et al.'s Table 3).
//!
//! In the *centralized* model the paper reproduces Qardaji et al.'s
//! finding that the wavelet approach (Privelet) incurs ≈ 1.86–2.8× the
//! average range-query variance of the consistent fanout-16 hierarchy,
//! whereas `HHc_2` lands at nearly the wavelet's error — the backdrop
//! against which the *local* result (wavelet ≈ best hierarchy within a few
//! percent) is surprising. We regenerate the comparison by running our own
//! centralized mechanisms rather than quoting the table.
//!
//! One deviation: Qardaji's Table 3 includes `D ∈ {2^9, 2^10, 2^11}` where
//! a fanout-16 tree is uneven; our trees are complete, so we sweep the
//! power-of-16 domains `{2^8, 2^12}` (plus `2^10` for fanout 2/wavelet
//! context is omitted). The ratio structure is what the paper uses and it
//! is preserved.

use cdp_baselines::{CdpHierarchical, Privelet};
use ldp_freq_oracle::Epsilon;
use ldp_workloads::QueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;
use crate::experiments::{cauchy_dataset, DEFAULT_CENTER};
use crate::metrics::{mean_and_sd, mse_exact, prefix_errors};
use crate::report::{fmt_sci, Table};

/// Domains swept (powers of 16 so that `HHc_16` is a complete tree).
const DOMAINS: [usize; 2] = [1 << 8, 1 << 12];

/// ε = 1 as in Qardaji's Table 3.
const EPS: f64 = 1.0;

/// Runs the centralized comparison; cells are the average variance over
/// all range queries in **count²** units (fraction MSE × N²), with the
/// ratio rows the paper reads off.
#[must_use]
pub fn run(ctx: &EvalContext) -> Table {
    let eps = Epsilon::new(EPS);
    // Centralized noise is cheap to sample; use generous repetitions.
    let reps = ctx.repetitions.max(8) * 4;
    let mut headers = vec!["method".to_string()];
    headers.extend(
        DOMAINS
            .iter()
            .map(|d| format!("D=2^{}", d.trailing_zeros())),
    );
    let mut table = Table::new(
        "Figure 7: centralized average range variance (count^2 units), eps = 1",
        headers,
    );

    let mut wavelet_means = Vec::new();
    let mut hh16_means = Vec::new();
    let mut hh2_means = Vec::new();

    for (di, &domain) in DOMAINS.iter().enumerate() {
        let config_id = 0x7000 + di as u64;
        let ds = cauchy_dataset(ctx, domain, DEFAULT_CENTER, config_id, 0);
        let n = ds.population() as f64;
        let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id ^ 0x7777, 1));

        let wavelet = Privelet::new(domain, eps).expect("privelet");
        let hh16 = CdpHierarchical::new(domain, 16, eps).expect("hh16");
        let hh2 = CdpHierarchical::new(domain, 2, eps).expect("hh2");

        let mut w_mses = Vec::new();
        let mut h16_mses = Vec::new();
        let mut h2_mses = Vec::new();
        for _ in 0..reps {
            let west = wavelet.release(ds.counts(), &mut rng);
            w_mses.push(mse_exact(&prefix_errors(&west, &ds), QueryWorkload::All) * n * n);

            let h16est = ldp_ranges::FrequencyEstimate::new(
                hh16.release(ds.counts(), true, &mut rng)
                    .tree()
                    .leaves()
                    .to_vec(),
            );
            h16_mses.push(mse_exact(&prefix_errors(&h16est, &ds), QueryWorkload::All) * n * n);

            let h2est = ldp_ranges::FrequencyEstimate::new(
                hh2.release(ds.counts(), true, &mut rng)
                    .tree()
                    .leaves()
                    .to_vec(),
            );
            h2_mses.push(mse_exact(&prefix_errors(&h2est, &ds), QueryWorkload::All) * n * n);
        }
        wavelet_means.push(mean_and_sd(&w_mses).0);
        hh16_means.push(mean_and_sd(&h16_mses).0);
        hh2_means.push(mean_and_sd(&h2_mses).0);
    }

    let row = |label: &str, values: &[f64]| {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| fmt_sci(*v)));
        cells
    };
    table.push_row(row("Wavelet", &wavelet_means));
    table.push_row(row("HHc16", &hh16_means));
    table.push_row(row("HHc2", &hh2_means));
    let ratios_w: Vec<f64> = wavelet_means
        .iter()
        .zip(&hh16_means)
        .map(|(w, h)| w / h)
        .collect();
    let ratios_2: Vec<f64> = hh2_means
        .iter()
        .zip(&hh16_means)
        .map(|(a, h)| a / h)
        .collect();
    table.push_row(row("Wavelet/HHc16", &ratios_w));
    table.push_row(row("HHc2/HHc16", &ratios_2));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_context;

    #[test]
    fn centralized_hierarchy_beats_wavelet_clearly() {
        // The defining shape of Qardaji's Table 3 (and the contrast with
        // the local setting): centrally, Wavelet/HHc16 ≥ ~1.8 and
        // HHc2 ≈ Wavelet.
        let ctx = tiny_context();
        let table = run(&ctx);
        assert_eq!(table.num_rows(), 5);
        let ratio_row = &table.rows()[3];
        for cell in &ratio_row[1..] {
            let ratio: f64 = cell.parse().unwrap();
            assert!(ratio > 1.3, "Wavelet/HHc16 ratio {ratio} should exceed 1.3");
        }
        let hh2_row = &table.rows()[4];
        for cell in &hh2_row[1..] {
            let ratio: f64 = cell.parse().unwrap();
            assert!(ratio > 1.2, "HHc2/HHc16 ratio {ratio} should exceed 1.2");
        }
    }
}
