//! Figure 9: decile (quantile) queries — value error and quantile error.
//!
//! For a left-skewed (`P = 0.1`) and a centered (`P = 0.5`) Cauchy
//! population, the best hierarchical method (`HHc_2`) and `HaarHRR`
//! estimate the nine deciles via prefix-query binary search. The paper
//! reports the *value error* (difference between the returned and true
//! quantile indices, large only where the data is sparse) and the
//! *quantile error* (distance in probability mass, which stays flat and
//! tiny — the headline observation).

use ldp_freq_oracle::FrequencyOracle;
use ldp_ranges::{quantile, RangeMechanism};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;
use crate::experiments::{cauchy_dataset, paper_epsilon};
use crate::metrics::{mean_and_sd, quantile_errors};
use crate::report::{fmt_sci, Table};
use crate::runner::run_mechanism;

/// The two population shapes of the figure.
const CENTERS: [f64; 2] = [0.1, 0.5];

/// Runs the experiment on the largest configured domain (the paper uses
/// `D = 2^22`); one row per (P, φ, method).
#[must_use]
pub fn run(ctx: &EvalContext) -> Table {
    let eps = paper_epsilon();
    let domain = *ctx.domains.iter().max().expect("at least one domain");
    let mut table = Table::new(
        format!("Figure 9: decile errors, D = {domain} (e^eps = 3)"),
        [
            "P",
            "phi",
            "method",
            "value_err",
            "abs_value_err",
            "quantile_err",
        ]
        .map(String::from)
        .to_vec(),
    );
    let methods: [(&str, RangeMechanism); 2] = [
        (
            "HHc2",
            RangeMechanism::Hierarchical {
                fanout: 2,
                oracle: FrequencyOracle::Oue,
                consistent: true,
            },
        ),
        ("HaarHRR", RangeMechanism::HaarHrr),
    ];

    for (ci, &p) in CENTERS.iter().enumerate() {
        // value_errs[method][phi] over repetitions.
        let mut value: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 9]; methods.len()];
        let mut qerr: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 9]; methods.len()];
        let config_id = 0x9000 + ci as u64;
        for rep in 0..ctx.repetitions {
            let ds = cauchy_dataset(ctx, domain, p, config_id, rep);
            let mut rng = StdRng::seed_from_u64(ctx.run_seed(config_id ^ 0x9999, rep));
            for (mi, (_, mech)) in methods.iter().enumerate() {
                let est = run_mechanism(*mech, eps, &ds, &mut rng).expect("mechanism runs");
                for (qi, phi) in (1..=9).map(|i| f64::from(i) / 10.0).enumerate() {
                    let found = quantile(&est, phi);
                    let errs = quantile_errors(&ds, phi, found);
                    value[mi][qi].push(errs.value_error);
                    qerr[mi][qi].push(errs.quantile_error);
                }
            }
        }
        for (qi, phi) in (1..=9).map(|i| f64::from(i) / 10.0).enumerate() {
            for (mi, (label, _)) in methods.iter().enumerate() {
                let (v_mean, _) = mean_and_sd(&value[mi][qi]);
                let abs: Vec<f64> = value[mi][qi].iter().map(|v| v.abs()).collect();
                let (abs_mean, _) = mean_and_sd(&abs);
                let (q_mean, _) = mean_and_sd(&qerr[mi][qi]);
                table.push_row(vec![
                    format!("{p:.1}"),
                    format!("{phi:.1}"),
                    (*label).to_string(),
                    fmt_sci(v_mean),
                    fmt_sci(abs_mean),
                    fmt_sci(q_mean),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_context;

    #[test]
    fn quantile_errors_stay_small() {
        let ctx = tiny_context();
        let table = run(&ctx);
        assert_eq!(table.num_rows(), 2 * 9 * 2);
        // The paper's key observation: quantile error is small and flat.
        for row in table.rows() {
            let q_err: f64 = row[5].parse().unwrap();
            assert!(q_err < 0.2, "quantile error {q_err} too large ({row:?})");
        }
    }
}
