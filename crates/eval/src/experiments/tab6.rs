//! Figure 6 (tables a–d): MSE vs ε for **prefix** queries.
//!
//! Identical setup to Figure 5 but evaluating every prefix query `[0, b]`
//! — §4.7 predicts roughly half the variance of arbitrary ranges since
//! only one fringe of the tree is cut.

use crate::context::EvalContext;
use crate::experiments::tab5::run_with_workload;
use crate::report::Table;

/// Runs the Figure 6 experiment.
#[must_use]
pub fn run(ctx: &EvalContext) -> Table {
    run_with_workload(
        ctx,
        true,
        "Figure 6: MSE (x1000) vs epsilon, prefix queries (Cauchy P=0.4)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{epsilon_sweep, tiny_context};

    #[test]
    fn prefix_errors_are_mostly_below_range_errors() {
        let ctx = tiny_context();
        let prefix_table = run(&ctx);
        let range_table = crate::experiments::tab5::run(&ctx);
        assert_eq!(prefix_table.num_rows(), range_table.num_rows());
        assert_eq!(prefix_table.num_rows(), epsilon_sweep().len());
        // §4.7: prefix queries should usually be no harder than arbitrary
        // ranges; require that on average (individual cells are noisy).
        let avg = |t: &Table, col: usize| -> f64 {
            let vals: Vec<f64> = t
                .rows()
                .iter()
                .filter_map(|r| r[col].parse::<f64>().ok())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        for col in [2usize, 3, 5] {
            // HHc2, HHc4, HaarHRR columns.
            let p = avg(&prefix_table, col);
            let r = avg(&range_table, col);
            assert!(p < r * 1.4, "column {col}: prefix {p} vs range {r}");
        }
    }
}
