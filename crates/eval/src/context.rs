//! Experiment scale configuration.

/// Global knobs for the experiment harness.
///
/// The paper's full scale (`N = 2^26` users, domains up to `2^22`, five
/// repetitions) is feasible with the simulation fast paths but takes
/// minutes-to-hours per figure; the default scale keeps every binary under
/// roughly a minute while preserving the comparisons' shapes. Select the
/// paper scale by setting the environment variable `LDP_FULL_SCALE=1`.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// Number of users `N`.
    pub population: u64,
    /// Repetitions per configuration (mean ± sd reported).
    pub repetitions: u32,
    /// Base RNG seed; repetition `i` of configuration `c` derives its own
    /// stream deterministically.
    pub seed: u64,
    /// Domain sizes to sweep.
    pub domains: Vec<usize>,
    /// Whether this is the paper-scale configuration.
    pub full_scale: bool,
}

impl EvalContext {
    /// Laptop-scale defaults: `N = 2^20`, domains `2^8` and `2^12`, three
    /// repetitions.
    #[must_use]
    pub fn scaled() -> Self {
        Self {
            population: 1 << 20,
            repetitions: 3,
            seed: 0x5eed,
            domains: vec![1 << 8, 1 << 12],
            full_scale: false,
        }
    }

    /// The paper's scale: `N = 2^26`, domains `2^8`, `2^16`, `2^20`,
    /// `2^22`, five repetitions.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            population: 1 << 26,
            repetitions: 5,
            seed: 0x5eed,
            domains: vec![1 << 8, 1 << 16, 1 << 20, 1 << 22],
            full_scale: true,
        }
    }

    /// Reads `LDP_FULL_SCALE` from the environment: any value other than
    /// `0`/empty selects [`EvalContext::paper`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("LDP_FULL_SCALE") {
            Ok(v) if !v.is_empty() && v != "0" => Self::paper(),
            _ => Self::scaled(),
        }
    }

    /// Deterministic per-run seed derivation (configuration × repetition).
    #[must_use]
    pub fn run_seed(&self, config_id: u64, repetition: u32) -> u64 {
        self.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(config_id.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(u64::from(repetition))
    }
}

impl Default for EvalContext {
    fn default() -> Self {
        Self::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_defaults() {
        let c = EvalContext::scaled();
        assert_eq!(c.population, 1 << 20);
        assert!(!c.full_scale);
        assert_eq!(c.domains, vec![256, 4096]);
    }

    #[test]
    fn paper_defaults_match_section_5() {
        let c = EvalContext::paper();
        assert_eq!(c.population, 1 << 26);
        assert_eq!(c.repetitions, 5);
        assert_eq!(c.domains, vec![1 << 8, 1 << 16, 1 << 20, 1 << 22]);
    }

    #[test]
    fn run_seeds_are_distinct() {
        let c = EvalContext::scaled();
        let a = c.run_seed(1, 0);
        let b = c.run_seed(1, 1);
        let d = c.run_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, d);
        assert_eq!(a, c.run_seed(1, 0));
    }
}
