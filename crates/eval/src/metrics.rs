//! Error metrics over query workloads.

use ldp_ranges::RangeEstimate;
use ldp_workloads::{Dataset, QueryWorkload};

/// Mean squared error of an estimate against the dataset's exact answers
/// over a query workload — the paper's headline accuracy metric ("the mean
/// squared error incurred in answering all range queries of length r",
/// §5.1). Answers are fractions in `[0, 1]`, so good values are ≪ 1.
///
/// # Panics
///
/// Panics if the estimate and dataset domains differ, or the workload is
/// empty.
#[must_use]
pub fn mse<E: RangeEstimate + ?Sized>(
    estimate: &E,
    dataset: &Dataset,
    workload: QueryWorkload,
) -> f64 {
    assert_eq!(
        estimate.domain(),
        dataset.domain(),
        "estimate/dataset domain mismatch"
    );
    let mut total = 0.0f64;
    let mut count = 0u64;
    for q in workload.queries(dataset.domain()) {
        let err = estimate.range(q.a, q.b) - dataset.true_range(q.a, q.b);
        total += err * err;
        count += 1;
    }
    assert!(count > 0, "workload produced no queries");
    total / count as f64
}

/// MSE over a workload subsampled to at most `max_queries` evenly strided
/// queries — for estimates that must be evaluated query-by-query (raw,
/// inconsistent trees) on domains where full enumeration is infeasible.
///
/// With `max_queries` ≥ the workload size this is exactly [`mse`].
///
/// # Panics
///
/// Panics on domain mismatch or `max_queries == 0`.
#[must_use]
pub fn mse_strided<E: RangeEstimate + ?Sized>(
    estimate: &E,
    dataset: &Dataset,
    workload: QueryWorkload,
    max_queries: u64,
) -> f64 {
    assert_eq!(estimate.domain(), dataset.domain());
    assert!(max_queries > 0);
    let total = workload.count(dataset.domain());
    let stride = total.div_ceil(max_queries).max(1) as usize;
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for q in workload.queries(dataset.domain()).step_by(stride) {
        let err = estimate.range(q.a, q.b) - dataset.true_range(q.a, q.b);
        sum += err * err;
        count += 1;
    }
    sum / count as f64
}

/// The `D + 1` prefix errors `e_i = P̂(i) − P(i)` of an estimate, where
/// `P(i)` is the true mass below position `i` (`e_0 = e` at the empty
/// prefix, always 0 for mechanisms that estimate fractions).
///
/// For any estimate whose range answers decompose as prefix differences —
/// the flat method, consistent trees, and Haar estimates — every range
/// error is `e_{b+1} − e_a`, which turns workload-wide MSEs into `O(D)`
/// closed forms (see [`mse_all_ranges_exact`]); this is how the harness
/// evaluates the paper's "all `C(D,2)` queries" workloads at `D = 2^16`
/// and beyond without enumerating billions of queries.
#[must_use]
pub fn prefix_errors<E: RangeEstimate + ?Sized>(estimate: &E, dataset: &Dataset) -> Vec<f64> {
    assert_eq!(estimate.domain(), dataset.domain());
    let d = dataset.domain();
    let mut errors = Vec::with_capacity(d + 1);
    errors.push(0.0);
    for b in 0..d {
        errors.push(estimate.prefix(b) - dataset.true_prefix(b));
    }
    errors
}

/// Exact mean squared error over **all** `D(D+1)/2` closed intervals, from
/// prefix errors, in `O(D)`:
/// `Σ_{a<c} (e_c − e_a)² = (D+1)·Σ e² − (Σ e)²` over the `D+1` prefix
/// positions.
///
/// Identical to enumerating [`QueryWorkload::All`] for prefix-decomposable
/// estimates.
#[must_use]
pub fn mse_all_ranges_exact(prefix_errors: &[f64]) -> f64 {
    let m = prefix_errors.len() as f64; // D + 1 prefix positions
    let s1: f64 = prefix_errors.iter().sum();
    let s2: f64 = prefix_errors.iter().map(|e| e * e).sum();
    // Σ_{a<c} (e_c − e_a)² = m·S2 − S1², averaged over m(m−1)/2 intervals.
    (m * s2 - s1 * s1) / (m * (m - 1.0) / 2.0)
}

/// Exact MSE over all `D − r + 1` intervals of length `r`, in `O(D)`.
#[must_use]
pub fn mse_fixed_length_exact(prefix_errors: &[f64], r: usize) -> f64 {
    let d = prefix_errors.len() - 1;
    assert!(r >= 1 && r <= d, "invalid length {r} for domain {d}");
    let mut total = 0.0;
    for a in 0..=d - r {
        let e = prefix_errors[a + r] - prefix_errors[a];
        total += e * e;
    }
    total / (d - r + 1) as f64
}

/// Exact MSE over all `D` prefix queries, in `O(D)`.
#[must_use]
pub fn mse_prefixes_exact(prefix_errors: &[f64]) -> f64 {
    let d = prefix_errors.len() - 1;
    prefix_errors[1..].iter().map(|e| e * e).sum::<f64>() / d as f64
}

/// Exact MSE over the paper's evenly-spaced-starts workload, in
/// `O(D²/step)` prefix lookups (still closed-form per start point).
#[must_use]
pub fn mse_spaced_starts_exact(prefix_errors: &[f64], step: usize) -> f64 {
    let d = prefix_errors.len() - 1;
    assert!(step >= 1);
    let mut total = 0.0;
    let mut count = 0u64;
    for a in (0..d).step_by(step) {
        let ea = prefix_errors[a];
        for &ec in &prefix_errors[a + 1..=d] {
            let e = ec - ea;
            total += e * e;
        }
        count += (d - a) as u64;
    }
    total / count as f64
}

/// Dispatches a workload to its exact `O(D)`-ish evaluation. Only valid
/// for prefix-decomposable estimates (see [`prefix_errors`]).
#[must_use]
pub fn mse_exact(prefix_errors: &[f64], workload: QueryWorkload) -> f64 {
    match workload {
        QueryWorkload::All => mse_all_ranges_exact(prefix_errors),
        QueryWorkload::SpacedStarts { step } => mse_spaced_starts_exact(prefix_errors, step),
        QueryWorkload::FixedLength { r } => mse_fixed_length_exact(prefix_errors, r),
        QueryWorkload::Prefixes => mse_prefixes_exact(prefix_errors),
    }
}

/// Sample mean and standard deviation over repetition results (the paper's
/// error bars: "Each bar plot is the mean of 5 repetitions … error bars
/// capture the observed standard deviation").
#[must_use]
pub fn mean_and_sd(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty());
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() == 1 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Quantile-query error pair of Definition 4.7 for one φ: the *value
/// error* `(Q̂ − Q)` in index units (squared by callers as needed) and the
/// *quantile error* `|q − q̂|` — how far, in probability mass, the returned
/// item's true rank is from the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileErrors {
    /// `Q̂ − Q`: signed difference between estimated and true quantile
    /// indices.
    pub value_error: f64,
    /// `|q − q̂|` where `q̂` is the true CDF at the returned index.
    pub quantile_error: f64,
}

/// Scores an estimated quantile index against the dataset.
#[must_use]
pub fn quantile_errors(dataset: &Dataset, phi: f64, estimated_index: usize) -> QuantileErrors {
    let true_index = dataset.true_quantile(phi);
    let realized = dataset.true_prefix(estimated_index);
    QuantileErrors {
        value_error: estimated_index as f64 - true_index as f64,
        quantile_error: (phi - realized).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_ranges::FrequencyEstimate;

    #[test]
    fn zero_error_for_exact_estimate() {
        let ds = Dataset::from_counts(vec![1, 2, 3, 4]);
        let est = FrequencyEstimate::new(ds.true_frequencies());
        assert!(mse(&est, &ds, QueryWorkload::All) < 1e-24);
    }

    #[test]
    fn mse_counts_every_query() {
        let ds = Dataset::from_counts(vec![10, 0, 0, 0]);
        // Estimate off by +0.1 on item 0 only: every query containing item
        // 0 errs by 0.1.
        let est = FrequencyEstimate::new(vec![1.1, 0.0, 0.0, 0.0]);
        // Queries containing item 0: 4 of the 10. MSE = 4·0.01/10.
        let got = mse(&est, &ds, QueryWorkload::All);
        assert!((got - 0.004).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn exact_mse_matches_enumeration() {
        // A deliberately lumpy estimate against a lumpy truth.
        let ds = Dataset::from_counts(vec![5, 1, 0, 7, 3, 3, 9, 2]);
        let est = FrequencyEstimate::new(vec![0.2, 0.0, 0.05, 0.25, 0.1, 0.1, 0.25, 0.05]);
        let e = prefix_errors(&est, &ds);
        assert_eq!(e.len(), 9);
        assert_eq!(e[0], 0.0);
        for (wl, label) in [
            (QueryWorkload::All, "all"),
            (QueryWorkload::Prefixes, "prefixes"),
            (QueryWorkload::FixedLength { r: 3 }, "r=3"),
            (QueryWorkload::FixedLength { r: 1 }, "r=1"),
            (QueryWorkload::SpacedStarts { step: 3 }, "spaced"),
        ] {
            let slow = mse(&est, &ds, wl);
            let fast = mse_exact(&e, wl);
            assert!((slow - fast).abs() < 1e-12, "{label}: {slow} vs {fast}");
        }
    }

    #[test]
    fn mean_sd_basics() {
        let (m, s) = mean_and_sd(&[2.0, 4.0]);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_and_sd(&[7.0]);
        assert_eq!((m1, s1), (7.0, 0.0));
    }

    #[test]
    fn quantile_error_definitions() {
        let ds = Dataset::from_counts(vec![25, 25, 25, 25]);
        // True median index: prefix(1) = 0.5 → index 1.
        let exact = quantile_errors(&ds, 0.5, 1);
        assert_eq!(exact.value_error, 0.0);
        assert!((exact.quantile_error - 0.0).abs() < 1e-12);
        // Returning index 2 overshoots by one item (0.25 of mass).
        let off = quantile_errors(&ds, 0.5, 2);
        assert_eq!(off.value_error, 1.0);
        assert!((off.quantile_error - 0.25).abs() < 1e-12);
    }
}
