//! Plain-text table rendering for experiment outputs.

use std::fmt::Write as _;

/// A rectangular results table, rendered with aligned columns — the shape
/// in which the paper's tables (Figures 5–7) are reported.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Access to raw rows (for tests and downstream processing).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Renders with space-aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{cell:>w$}", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats an MSE the way the paper's tables do: scaled up by 1000, three
/// decimal places.
#[must_use]
pub fn fmt_mse_x1000(mse: f64) -> String {
    format!("{:.3}", mse * 1000.0)
}

/// Formats a raw float compactly for table cells.
#[must_use]
pub fn fmt_sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if (0.001..10_000.0).contains(&v.abs()) {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", vec!["eps".into(), "mse".into()]);
        t.push_row(vec!["0.2".into(), "4.269".into()]);
        t.push_row(vec!["1.4".into(), "0.571".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("eps"));
        assert_eq!(t.num_rows(), 2);
        // Columns align: every data line has the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[2].len().max(lines[3].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn mse_formatting_matches_paper_style() {
        assert_eq!(fmt_mse_x1000(0.004269), "4.269");
        assert_eq!(fmt_mse_x1000(0.000571), "0.571");
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(fmt_sci(0.0), "0");
        assert!(fmt_sci(1234.5).starts_with("1234."));
        assert!(fmt_sci(1e-9).contains('e'));
    }
}
