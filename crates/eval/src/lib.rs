//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5).
//!
//! * [`context`] — scale knobs (`EvalContext::from_env` honors
//!   `LDP_FULL_SCALE=1` for the paper's `N = 2^26` / `D ≤ 2^22` setup).
//! * [`runner`] — run any [`ldp_ranges::RangeMechanism`] over a dataset via
//!   the population-scale simulation path.
//! * [`metrics`] — MSE over query workloads, including exact `O(D)`
//!   closed forms for prefix-decomposable estimates (what makes "all
//!   `C(D,2)` queries" tractable at `D = 2^22`), and the quantile error
//!   definitions of Definition 4.7.
//! * [`experiments`] — one module per table/figure: [`experiments::fig4`],
//!   [`experiments::tab5`], [`experiments::tab6`], [`experiments::tab7`],
//!   [`experiments::fig8`], [`experiments::fig9`].
//! * [`report`] — plain-text table rendering.

pub mod context;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;

pub use context::EvalContext;
pub use metrics::{
    mean_and_sd, mse, mse_all_ranges_exact, mse_exact, mse_fixed_length_exact, mse_prefixes_exact,
    mse_spaced_starts_exact, mse_strided, prefix_errors, quantile_errors, QuantileErrors,
};
pub use report::Table;
pub use runner::{run_mechanism, valid_fanouts, BuiltEstimate};
