//! One-shot mechanism execution: dataset in, scored estimate out.

use rand::RngCore;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{
    FlatConfig, FlatServer, FrequencyEstimate, HaarConfig, HaarHrrServer, HhConfig, HhEstimate,
    HhServer, RangeError, RangeEstimate, RangeMechanism,
};
use ldp_workloads::Dataset;

/// A mechanism's reconstructed estimate, in whichever evaluation form is
/// exact *and* fastest for that mechanism:
///
/// * consistent trees and Haar pyramids collapse losslessly to per-item
///   frequencies (`O(1)` per query);
/// * inconsistent trees must be evaluated through their B-adic
///   decomposition (collapsing would change the answers).
#[derive(Debug, Clone)]
pub enum BuiltEstimate {
    /// Per-item frequencies with prefix sums.
    Frequencies(FrequencyEstimate),
    /// A raw (inconsistent) hierarchical tree.
    Tree(HhEstimate),
}

impl RangeEstimate for BuiltEstimate {
    fn domain(&self) -> usize {
        match self {
            Self::Frequencies(e) => e.domain(),
            Self::Tree(e) => e.domain(),
        }
    }

    fn range(&self, a: usize, b: usize) -> f64 {
        match self {
            Self::Frequencies(e) => e.range(a, b),
            Self::Tree(e) => e.range(a, b),
        }
    }

    fn point(&self, z: usize) -> f64 {
        match self {
            Self::Frequencies(e) => e.point(z),
            Self::Tree(e) => e.point(z),
        }
    }
}

/// Runs one mechanism over a dataset via the population-scale simulation
/// path and returns its estimate.
///
/// # Errors
///
/// Propagates configuration errors (e.g. a fanout that does not divide the
/// domain, or HRR over a non-power-of-two level).
pub fn run_mechanism(
    mechanism: RangeMechanism,
    epsilon: Epsilon,
    dataset: &Dataset,
    rng: &mut dyn RngCore,
) -> Result<BuiltEstimate, RangeError> {
    let domain = dataset.domain();
    match mechanism {
        RangeMechanism::Flat(oracle) => {
            let config = FlatConfig::with_oracle(domain, epsilon, oracle)?;
            let mut server = FlatServer::new(&config)?;
            server.absorb_population(dataset.counts(), rng)?;
            Ok(BuiltEstimate::Frequencies(server.estimate()))
        }
        RangeMechanism::Hierarchical {
            fanout,
            oracle,
            consistent,
        } => {
            let config = HhConfig::with_oracle(domain, fanout, epsilon, oracle)?;
            let mut server = HhServer::new(config)?;
            server.absorb_population(dataset.counts(), rng)?;
            if consistent {
                // Lossless collapse: after CI every range is a leaf
                // prefix-sum difference (§4.5).
                Ok(BuiltEstimate::Frequencies(
                    server.estimate_consistent().to_frequency_estimate(),
                ))
            } else {
                Ok(BuiltEstimate::Tree(server.estimate()))
            }
        }
        RangeMechanism::HaarHrr => {
            let config = HaarConfig::new(domain, epsilon)?;
            let mut server = HaarHrrServer::new(config)?;
            server.absorb_population(dataset.counts(), rng)?;
            Ok(BuiltEstimate::Frequencies(
                server.estimate().to_frequency_estimate(),
            ))
        }
    }
}

/// The branching factors `B = 2^k` that give an integer-height tree over
/// `domain = 2^m`, capped at `max_fanout` — how the paper chooses its
/// Figure 4 x-axis ("Since the domain size D is chosen to be a power of 2,
/// we can choose a range of branching factors B … so that log_B(D) remains
/// an integer").
#[must_use]
pub fn valid_fanouts(domain: usize, max_fanout: usize) -> Vec<usize> {
    assert!(domain.is_power_of_two() && domain >= 4);
    let m = domain.trailing_zeros();
    (1..m)
        .filter(|k| m.is_multiple_of(*k))
        .map(|k| 1usize << k)
        .filter(|&b| b <= max_fanout)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::FrequencyOracle;
    use ldp_workloads::{CauchyParams, DistributionKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cauchy_dataset(domain: usize, n: u64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::sample(
            DistributionKind::Cauchy(CauchyParams::paper_default()),
            domain,
            n,
            &mut rng,
        )
    }

    #[test]
    fn all_mechanisms_run_and_are_roughly_accurate() {
        let ds = cauchy_dataset(256, 1 << 18, 161);
        let eps = Epsilon::from_exp(3.0);
        let mut rng = StdRng::seed_from_u64(162);
        let mechanisms = [
            RangeMechanism::Flat(FrequencyOracle::Oue),
            RangeMechanism::Hierarchical {
                fanout: 4,
                oracle: FrequencyOracle::Oue,
                consistent: false,
            },
            RangeMechanism::Hierarchical {
                fanout: 4,
                oracle: FrequencyOracle::Oue,
                consistent: true,
            },
            RangeMechanism::Hierarchical {
                fanout: 2,
                oracle: FrequencyOracle::Hrr,
                consistent: true,
            },
            RangeMechanism::HaarHrr,
        ];
        for mech in mechanisms {
            let est = run_mechanism(mech, eps, &ds, &mut rng).unwrap();
            assert_eq!(est.domain(), 256);
            let truth = ds.true_range(64, 160);
            let got = est.range(64, 160);
            assert!((got - truth).abs() < 0.1, "{mech}: {got} vs {truth}");
        }
    }

    #[test]
    fn invalid_configurations_error() {
        let ds = cauchy_dataset(256, 1 << 12, 163);
        let mut rng = StdRng::seed_from_u64(164);
        let bad = RangeMechanism::Hierarchical {
            fanout: 6,
            oracle: FrequencyOracle::Oue,
            consistent: true,
        };
        assert!(run_mechanism(bad, Epsilon::new(1.0), &ds, &mut rng).is_err());
    }

    #[test]
    fn fanout_enumeration() {
        assert_eq!(valid_fanouts(256, 256), vec![2, 4, 16]);
        assert_eq!(valid_fanouts(1 << 12, 64), vec![2, 4, 8, 16, 64]);
        assert_eq!(valid_fanouts(1 << 16, 16), vec![2, 4, 16]);
    }
}
