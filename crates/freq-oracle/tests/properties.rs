//! Property-based tests for the frequency-oracle crate: privacy ratios,
//! estimator algebra and sampler invariants over randomized inputs.

use proptest::prelude::*;

use ldp_freq_oracle::binomial::sample_binomial;
use ldp_freq_oracle::{
    binary_rr_keep_prob, grr_keep_prob, oue_probs, sue_probs, AnyOracle, Epsilon, FrequencyOracle,
    PointOracle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn all_perturbation_primitives_satisfy_their_ldp_ratio(eps_v in 0.05f64..5.0) {
        let eps = Epsilon::new(eps_v);
        let e = eps.exp();

        let p = binary_rr_keep_prob(eps);
        prop_assert!((p / (1.0 - p) - e).abs() / e < 1e-9);

        let (p, q) = oue_probs(eps);
        prop_assert!(((p / q) * ((1.0 - q) / (1.0 - p)) - e).abs() / e < 1e-9);

        let (p, q) = sue_probs(eps);
        prop_assert!(((p / q) * ((1.0 - q) / (1.0 - p)) - e).abs() / e < 1e-9);

        for k in [2usize, 5, 64] {
            let p = grr_keep_prob(eps, k);
            let lie = (1.0 - p) / (k as f64 - 1.0);
            prop_assert!((p / lie - e).abs() / e < 1e-9);
        }
    }

    #[test]
    fn estimates_always_have_domain_length_and_finite_values(
        domain_log in 0u32..7,
        seed in 0u64..500,
        kind_idx in 0usize..4,
    ) {
        let domain = 1usize << domain_log;
        let kind = [
            FrequencyOracle::Oue,
            FrequencyOracle::Olh,
            FrequencyOracle::Hrr,
            FrequencyOracle::Sue,
        ][kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = AnyOracle::new(kind, domain, Epsilon::new(1.0)).unwrap();
        let counts: Vec<u64> = (0..domain).map(|z| (z as u64 * 13 + seed) % 50).collect();
        if counts.iter().sum::<u64>() > 0 {
            oracle.absorb_population(&counts, &mut rng).unwrap();
        }
        let est = oracle.estimate();
        prop_assert_eq!(est.len(), domain);
        prop_assert!(est.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn oue_estimates_sum_near_total_mass(
        seed in 0u64..300,
        scale in 1u64..40,
    ) {
        // The OUE estimator is linear and unbiased, so the estimate total
        // concentrates around 1 for any input histogram.
        let domain = 32usize;
        let counts: Vec<u64> = (0..domain).map(|z| (z as u64 * 7 + 1) * scale * 10).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = AnyOracle::new(FrequencyOracle::Oue, domain, Epsilon::new(1.1)).unwrap();
        oracle.absorb_population(&counts, &mut rng).unwrap();
        let total: f64 = oracle.estimate().iter().sum();
        prop_assert!((total - 1.0).abs() < 0.3, "total {total}");
    }

    #[test]
    fn binomial_sampler_stays_in_support(
        n in 0u64..2_000_000,
        p in 0.0f64..=1.0,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = sample_binomial(&mut rng, n, p);
        prop_assert!(x <= n);
        if p == 0.0 {
            prop_assert_eq!(x, 0);
        }
        if p == 1.0 {
            prop_assert_eq!(x, n);
        }
    }

    #[test]
    fn merged_shards_equal_combined_report_count(
        seed in 0u64..200,
        split in 1u64..99,
    ) {
        let domain = 16usize;
        let eps = Epsilon::new(1.0);
        let total = 10_000u64;
        let a_count = total * split / 100;
        let mut rng = StdRng::seed_from_u64(seed);
        let counts_a: Vec<u64> = vec![a_count / domain as u64; domain];
        let counts_b: Vec<u64> = vec![(total - a_count) / domain as u64; domain];

        let mut a = AnyOracle::new(FrequencyOracle::Hrr, domain, eps).unwrap();
        a.absorb_population(&counts_a, &mut rng).unwrap();
        let mut b = AnyOracle::new(FrequencyOracle::Hrr, domain, eps).unwrap();
        b.absorb_population(&counts_b, &mut rng).unwrap();
        let na = a.num_reports();
        let nb = b.num_reports();
        a.merge(&b).unwrap();
        prop_assert_eq!(a.num_reports(), na + nb);
        let est = a.estimate();
        // Uniform data → near-uniform estimates.
        for (z, v) in est.iter().enumerate() {
            prop_assert!((v - 1.0 / domain as f64).abs() < 0.2, "item {z}: {v}");
        }
    }
}
