//! Error type for oracle construction and use.

use std::fmt;

/// Errors raised when configuring or feeding a frequency oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The domain must contain at least one item.
    EmptyDomain,
    /// HRR requires a power-of-two domain (the Hadamard matrix is only
    /// defined for `D = 2^k`).
    DomainNotPowerOfTwo(usize),
    /// A reported or encoded value lies outside the configured domain.
    ValueOutOfDomain {
        /// The offending value.
        value: usize,
        /// The configured domain size.
        domain: usize,
    },
    /// A report was built for a different domain size than the server's.
    ReportDomainMismatch {
        /// Domain the report was encoded for.
        report: usize,
        /// Domain the server expects.
        server: usize,
    },
    /// A subtraction would drive an accumulator negative — the subtrahend
    /// was never merged into this state, so removing it is meaningless.
    SubtractUnderflow,
    /// Persisted accumulator state failed validation on load: wrong
    /// statistic length, or counts no sequence of absorbed reports could
    /// have produced (a per-item count above the report total).
    InvalidState(&'static str),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDomain => write!(f, "domain must contain at least one item"),
            Self::DomainNotPowerOfTwo(d) => {
                write!(f, "HRR requires a power-of-two domain, got {d}")
            }
            Self::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain of size {domain}")
            }
            Self::ReportDomainMismatch { report, server } => {
                write!(
                    f,
                    "report encoded for domain {report}, server expects {server}"
                )
            }
            Self::SubtractUnderflow => {
                write!(f, "subtrahend state was never merged into this accumulator")
            }
            Self::InvalidState(what) => write!(f, "invalid persisted state: {what}"),
        }
    }
}

impl std::error::Error for OracleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OracleError::EmptyDomain
            .to_string()
            .contains("at least one"));
        assert!(OracleError::DomainNotPowerOfTwo(6)
            .to_string()
            .contains('6'));
        let e = OracleError::ValueOutOfDomain {
            value: 9,
            domain: 8,
        };
        assert!(e.to_string().contains("9"));
        let e = OracleError::ReportDomainMismatch {
            report: 4,
            server: 8,
        };
        assert!(e.to_string().contains("4"));
        assert!(OracleError::SubtractUnderflow
            .to_string()
            .contains("never merged"));
        assert!(OracleError::InvalidState("count above report total")
            .to_string()
            .contains("persisted state"));
    }
}
