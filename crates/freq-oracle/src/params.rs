//! Privacy parameters shared by every mechanism.

use std::fmt;

/// The privacy budget ε of an ε-LDP mechanism.
///
/// A newtype so that mechanisms cannot accidentally be handed a raw,
/// unvalidated float: ε must be strictly positive and finite. The paper's
/// default is `e^ε = 3` (ε ≈ 1.1), with the sweep ε ∈ [0.1, 1.4] in §5.2.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps a privacy budget.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps` and `eps` is finite. Use [`Epsilon::try_new`]
    /// for a non-panicking variant.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        Self::try_new(eps)
            .unwrap_or_else(|| panic!("epsilon must be positive and finite, got {eps}"))
    }

    /// Validates and wraps a privacy budget, returning `None` if invalid.
    #[must_use]
    pub fn try_new(eps: f64) -> Option<Self> {
        (eps.is_finite() && eps > 0.0).then_some(Self(eps))
    }

    /// Constructs ε from the odds ratio `e^ε` (the paper specifies its
    /// default privacy level as `e^ε = 3`).
    ///
    /// # Panics
    ///
    /// Panics if `exp_eps <= 1` or is not finite.
    #[must_use]
    pub fn from_exp(exp_eps: f64) -> Self {
        assert!(
            exp_eps.is_finite() && exp_eps > 1.0,
            "e^eps must exceed 1, got {exp_eps}"
        );
        Self(exp_eps.ln())
    }

    /// The raw budget ε.
    #[inline]
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `e^ε`, the likelihood-ratio bound of the LDP definition.
    #[inline]
    #[must_use]
    pub fn exp(self) -> f64 {
        self.0.exp()
    }

    /// Splits the budget into `k` equal parts (sequential composition, used
    /// only by the *centralized* baselines — the local mechanisms sample
    /// levels instead of splitting, which is the paper's key difference
    /// from the centralized case, §4.4).
    #[must_use]
    pub fn split(self, k: u32) -> Self {
        assert!(k >= 1);
        Self(self.0 / f64::from(k))
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Keep/flip probability of binary randomized response at budget ε:
/// `p = e^ε / (1 + e^ε)`. Truthful with probability `p`, lying with `1 − p`
/// satisfies ε-LDP because `p / (1 − p) = e^ε`.
#[inline]
#[must_use]
pub fn binary_rr_keep_prob(eps: Epsilon) -> f64 {
    let e = eps.exp();
    e / (1.0 + e)
}

/// OUE bit-flip parameters `(p, q)`: a 1-bit is reported as 1 with
/// probability `p = 1/2`; a 0-bit is reported as 1 with probability
/// `q = 1/(1 + e^ε)` (paper §3.2). The ratio `(p/q)·((1−q)/(1−p)) = e^ε`.
#[inline]
#[must_use]
pub fn oue_probs(eps: Epsilon) -> (f64, f64) {
    (0.5, 1.0 / (1.0 + eps.exp()))
}

/// GRR keep probability over `k` categories:
/// `p = e^ε / (e^ε + k − 1)`; each of the other `k − 1` values is reported
/// with probability `(1 − p)/(k − 1) = 1/(e^ε + k − 1)`.
#[inline]
#[must_use]
pub fn grr_keep_prob(eps: Epsilon, k: usize) -> f64 {
    assert!(k >= 2, "GRR needs at least two categories");
    let e = eps.exp();
    e / (e + (k as f64) - 1.0)
}

/// The OLH hash range `g = ⌊e^ε⌋ + 1` that minimizes the variance
/// (`g = e^ε + 1` rounded to an integer, per Wang et al. / paper §3.2).
#[inline]
#[must_use]
pub fn olh_hash_range(eps: Epsilon) -> usize {
    ((eps.exp() + 1.0).round() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::try_new(1.0).is_some());
        assert!(Epsilon::try_new(0.0).is_none());
        assert!(Epsilon::try_new(-1.0).is_none());
        assert!(Epsilon::try_new(f64::NAN).is_none());
        assert!(Epsilon::try_new(f64::INFINITY).is_none());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn epsilon_new_panics_on_invalid() {
        let _ = Epsilon::new(-0.5);
    }

    #[test]
    fn from_exp_matches_paper_default() {
        let eps = Epsilon::from_exp(3.0);
        assert!((eps.value() - 3f64.ln()).abs() < 1e-12);
        assert!((eps.exp() - 3.0).abs() < 1e-12);
        // "binary randomized response will report a true answer 3/4 of the
        // time" at e^eps = 3.
        assert!((binary_rr_keep_prob(eps) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn binary_rr_satisfies_ldp_ratio() {
        for eps_v in [0.1, 0.5, 1.1, 2.0] {
            let eps = Epsilon::new(eps_v);
            let p = binary_rr_keep_prob(eps);
            // Likelihood ratio of observing "1" from input 1 vs input 0.
            assert!((p / (1.0 - p) - eps.exp()).abs() < 1e-9);
        }
    }

    #[test]
    fn oue_probs_satisfy_ldp_ratio() {
        for eps_v in [0.2, 1.1, 1.4] {
            let eps = Epsilon::new(eps_v);
            let (p, q) = oue_probs(eps);
            // Changing the input moves one bit 0→1 and another 1→0, so the
            // worst-case likelihood ratio over outputs is the product
            // (p/q)·((1−q)/(1−p)), which must equal e^eps exactly.
            let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
            assert!((ratio - eps.exp()).abs() < 1e-9, "eps={eps_v}");
        }
    }

    #[test]
    fn grr_ratio_is_exp_eps() {
        for k in [2usize, 4, 10, 100] {
            let eps = Epsilon::new(1.1);
            let p = grr_keep_prob(eps, k);
            let q = (1.0 - p) / (k as f64 - 1.0);
            assert!((p / q - eps.exp()).abs() < 1e-9);
        }
    }

    #[test]
    fn olh_range_examples() {
        assert_eq!(olh_hash_range(Epsilon::from_exp(3.0)), 4);
        assert_eq!(olh_hash_range(Epsilon::new(0.2)), 2);
    }

    #[test]
    fn split_divides_budget() {
        let eps = Epsilon::new(1.0);
        assert!((eps.split(4).value() - 0.25).abs() < 1e-12);
    }
}
