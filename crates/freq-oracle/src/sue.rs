//! Symmetric Unary Encoding (SUE) — basic one-time RAPPOR (Erlingsson et
//! al., CCS 2014; reference \[12\] of the paper).
//!
//! Like OUE, the user one-hot encodes her value and flips bits
//! independently; unlike OUE the flip probabilities are *symmetric*:
//! a bit is reported truthfully with probability `p = e^{ε/2}/(1+e^{ε/2})`
//! (so `p/q = e^{ε/2}`, and the two bits that change when the input
//! changes compose to exactly `e^ε`). Wang et al. showed the asymmetric
//! OUE choice strictly improves on this — SUE's variance carries
//! `e^{ε/2}` where OUE's carries `e^ε`:
//! `VF_SUE = e^{ε/2}/(N(e^{ε/2}−1)²) · 4 … ≥ VF_OUE`.
//!
//! Included as the historical baseline the optimized mechanisms are
//! measured against (the paper cites RAPPOR as the archetypal deployed
//! LDP system); the `oracle_suite` ablation compares it against OUE
//! empirically.

use rand::{Rng, RngCore};

use crate::binomial::sample_binomial;
use crate::oracle::PointOracle;
use crate::oue::OueReport;
use crate::{Epsilon, OracleError};

/// SUE bit-retention probabilities `(p, q)` with `p + q = 1` and
/// `p/q = e^{ε/2}`.
#[must_use]
pub fn sue_probs(eps: Epsilon) -> (f64, f64) {
    let half = (eps.value() / 2.0).exp();
    (half / (1.0 + half), 1.0 / (1.0 + half))
}

/// Theoretical per-item variance of the SUE estimator:
/// `q(1−q)/(N(p−q)²)` with the symmetric `(p, q)` above.
#[must_use]
pub fn sue_variance(eps: Epsilon, num_reports: u64) -> f64 {
    if num_reports == 0 {
        return f64::INFINITY;
    }
    let (p, q) = sue_probs(eps);
    q * (1.0 - q) / (num_reports as f64 * (p - q) * (p - q))
}

/// The SUE frequency oracle (client parameters + aggregator state).
///
/// Reports reuse [`OueReport`] (both mechanisms transmit a perturbed
/// `D`-bit vector).
#[derive(Debug, Clone)]
pub struct Sue {
    domain: usize,
    eps: Epsilon,
    p: f64,
    q: f64,
    counts: Vec<u64>,
    reports: u64,
}

impl Sue {
    /// Creates a SUE oracle over `domain` items.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::EmptyDomain`] for a zero-size domain.
    pub fn new(domain: usize, eps: Epsilon) -> Result<Self, OracleError> {
        if domain == 0 {
            return Err(OracleError::EmptyDomain);
        }
        let (p, q) = sue_probs(eps);
        Ok(Self {
            domain,
            eps,
            p,
            q,
            counts: vec![0; domain],
            reports: 0,
        })
    }

    /// The symmetric `(p, q)` retention probabilities.
    #[must_use]
    pub fn probs(&self) -> (f64, f64) {
        (self.p, self.q)
    }

    /// The accumulated noisy 1-counts per item — the oracle's complete
    /// mutable state (see [`crate::Oue::counts`]).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Replaces the accumulator state with previously persisted counts —
    /// the restore dual of [`Sue::counts`] (see [`crate::Oue::load_state`]).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::InvalidState`] on a length mismatch or a
    /// per-item count above `reports`. State is unchanged on error.
    pub fn load_state(&mut self, counts: Vec<u64>, reports: u64) -> Result<(), OracleError> {
        if counts.len() != self.domain {
            return Err(OracleError::InvalidState("count vector length != domain"));
        }
        if counts.iter().any(|&c| c > reports) {
            return Err(OracleError::InvalidState("item count above report total"));
        }
        self.counts = counts;
        self.reports = reports;
        Ok(())
    }

    /// Merges another shard's accumulator into this one.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on shape mismatch.
    pub fn merge(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Removes a previously merged shard's accumulator — the exact inverse
    /// of [`Sue::merge`] (see [`crate::Oue::subtract`]).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on shape mismatch and
    /// [`OracleError::SubtractUnderflow`] if `other` was never merged into
    /// this state. The accumulator is unchanged on error.
    pub fn subtract(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        if self.reports < other.reports || self.counts.iter().zip(&other.counts).any(|(a, b)| a < b)
        {
            return Err(OracleError::SubtractUnderflow);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a -= b;
        }
        self.reports -= other.reports;
        Ok(())
    }
}

impl PointOracle for Sue {
    type Report = OueReport;

    fn domain(&self) -> usize {
        self.domain
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn encode(&self, value: usize, rng: &mut dyn RngCore) -> Result<OueReport, OracleError> {
        if value >= self.domain {
            return Err(OracleError::ValueOutOfDomain {
                value,
                domain: self.domain,
            });
        }
        let mut bits = vec![false; self.domain];
        for (j, bit) in bits.iter_mut().enumerate() {
            let keep = if j == value { self.p } else { self.q };
            *bit = rng.random::<f64>() < keep;
        }
        Ok(OueReport::from_bits(self.domain, &bits))
    }

    fn absorb(&mut self, report: &OueReport) -> Result<(), OracleError> {
        if report.domain() != self.domain {
            return Err(OracleError::ReportDomainMismatch {
                report: report.domain(),
                server: self.domain,
            });
        }
        // Word-wise set-bit walk, exactly as [`crate::Oue::absorb`]: the
        // same increments as the per-bit loop, so state is bit-identical.
        for (wi, &word) in report.words().iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let j = wi * 64 + w.trailing_zeros() as usize;
                self.counts[j] += 1;
                w &= w - 1;
            }
        }
        self.reports += 1;
        Ok(())
    }

    fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), OracleError> {
        if true_counts.len() != self.domain {
            return Err(OracleError::ReportDomainMismatch {
                report: true_counts.len(),
                server: self.domain,
            });
        }
        let n: u64 = true_counts.iter().sum();
        for (j, &c) in true_counts.iter().enumerate() {
            let kept = sample_binomial(rng, c, self.p);
            let flipped = sample_binomial(rng, n - c, self.q);
            self.counts[j] += kept + flipped;
        }
        self.reports += n;
        Ok(())
    }

    fn num_reports(&self) -> u64 {
        self.reports
    }

    fn estimate(&self) -> Vec<f64> {
        if self.reports == 0 {
            return vec![0.0; self.domain];
        }
        let n = self.reports as f64;
        let denom = self.p - self.q;
        self.counts
            .iter()
            .map(|&c| (c as f64 / n - self.q) / denom)
            .collect()
    }

    fn theoretical_variance(&self) -> f64 {
        sue_variance(self.eps, self.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_are_symmetric_and_ldp() {
        for eps_v in [0.2, 1.1, 2.0] {
            let eps = Epsilon::new(eps_v);
            let (p, q) = sue_probs(eps);
            assert!((p + q - 1.0).abs() < 1e-12);
            // Two changed bits compose: (p/q)² = e^eps.
            let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
            assert!((ratio - eps.exp()).abs() < 1e-9, "eps={eps_v}");
        }
    }

    #[test]
    fn sue_variance_exceeds_oue_variance() {
        // Wang et al.'s optimization result, relied on by the paper's
        // choice of OUE as its best flat/level primitive.
        for eps_v in [0.2, 0.8, 1.1, 1.4] {
            let eps = Epsilon::new(eps_v);
            let sue = sue_variance(eps, 1_000);
            let oue = crate::variance::frequency_oracle_variance(eps, 1_000);
            assert!(sue > oue, "eps={eps_v}: SUE {sue} should exceed OUE {oue}");
        }
    }

    #[test]
    fn estimates_are_unbiased() {
        let eps = Epsilon::new(1.1);
        let mut oracle = Sue::new(8, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(191);
        let counts = vec![6_000u64, 0, 2_000, 0, 0, 0, 2_000, 0];
        oracle.absorb_population(&counts, &mut rng).unwrap();
        let est = oracle.estimate();
        assert!((est[0] - 0.6).abs() < 0.05, "est[0]={}", est[0]);
        assert!((est[2] - 0.2).abs() < 0.05, "est[2]={}", est[2]);
        assert!(est[1].abs() < 0.05);
    }

    #[test]
    fn per_user_path_matches_population_path() {
        let eps = Epsilon::new(1.0);
        let mut a = Sue::new(4, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(192);
        for _ in 0..20_000 {
            let r = a.encode(1, &mut rng).unwrap();
            a.absorb(&r).unwrap();
        }
        let est = a.estimate();
        assert!((est[1] - 1.0).abs() < 0.05, "est[1]={}", est[1]);
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let eps = Epsilon::new(1.0);
        let counts = vec![2_000u64; 4];
        let n: u64 = counts.iter().sum();
        let mut rng = StdRng::seed_from_u64(193);
        let reps = 500;
        let mut sq = 0.0;
        for _ in 0..reps {
            let mut oracle = Sue::new(4, eps).unwrap();
            oracle.absorb_population(&counts, &mut rng).unwrap();
            sq += (oracle.estimate()[0] - 0.25_f64).powi(2);
        }
        let empirical = sq / f64::from(reps);
        let theory = sue_variance(eps, n);
        let ratio = empirical / theory;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Sue::new(0, Epsilon::new(1.0)).is_err());
        let oracle = Sue::new(4, Epsilon::new(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(194);
        assert!(oracle.encode(4, &mut rng).is_err());
    }
}
