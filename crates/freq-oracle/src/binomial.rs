//! Fast binomial sampling for population-scale simulation.
//!
//! The paper's evaluation (§5, "Histogram estimation primitives") replaces
//! per-user OUE perturbation with a statistically equivalent simulation:
//! the aggregator's noisy count for item `j` is
//! `Bino(θ[j], 1/2) + Bino(N − θ[j], 1/(1+e^ε))`. With `N = 2^26` users this
//! needs millions of binomial draws with `n` up to `2^26`, so a naive
//! Bernoulli loop is far too slow. This module provides a sampler with three
//! regimes:
//!
//! * tiny `n` — direct Bernoulli counting;
//! * small mean (`n·p` ≲ 30) — geometric-gap inversion, `O(n·p)` expected;
//! * large mean — Gaussian approximation with rounding and clamping, whose
//!   total-variation error is negligible at the variances involved here
//!   (≥ 15) relative to the sampling noise being measured.

use rand::Rng;

/// Mean threshold below which exact inversion sampling is used.
const INVERSION_MEAN_LIMIT: f64 = 30.0;
/// Population threshold below which a plain Bernoulli loop is cheapest.
const BERNOULLI_LIMIT: u64 = 32;

/// Draws from `Binomial(n, p)`.
///
/// Exact for `n·min(p, 1−p) ≤ 30`; Gaussian-approximate above (documented
/// substitution: at that point the distribution is within ~1e-3 total
/// variation of the Gaussian, far below the experiment noise floor).
///
/// # Panics
///
/// Panics if `p` is not a probability.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Exploit symmetry so that the worked probability is ≤ 1/2; this keeps
    // the inversion loop short and the Gaussian regime well conditioned.
    if p > 0.5 {
        return n - sample_binomial(rng, n, 1.0 - p);
    }
    if n <= BERNOULLI_LIMIT {
        return (0..n).filter(|_| rng.random::<f64>() < p).count() as u64;
    }
    let mean = n as f64 * p;
    if mean <= INVERSION_MEAN_LIMIT {
        sample_by_geometric_gaps(rng, n, p)
    } else {
        sample_by_gaussian(rng, n, p)
    }
}

/// Inversion via geometric gaps between successes: expected `O(n·p)` time.
fn sample_by_geometric_gaps<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let log_q = (1.0 - p).ln();
    debug_assert!(log_q < 0.0);
    let mut count = 0u64;
    let mut pos = 0f64;
    loop {
        // Gap to the next success is Geometric(p); sample by inversion.
        let u: f64 = rng.random();
        pos += (u.ln() / log_q).floor() + 1.0;
        if pos > n as f64 {
            return count;
        }
        count += 1;
    }
}

/// Gaussian approximation for the bulk regime.
fn sample_by_gaussian<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let z = standard_normal(rng);
    let x = (mean + sd * z).round();
    x.clamp(0.0, n as f64) as u64
}

/// Standard normal draw via Box–Muller (one value per call; simplicity over
/// caching the second value, which profiling shows is irrelevant here).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would take ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Splits `n` trials into counts per category with probabilities `probs`
/// (which must sum to ~1), by sequential conditional binomials — an exact
/// multinomial sampler in `O(k)` binomial draws.
///
/// Used to scatter the population over levels (level sampling) and over
/// Hadamard indices without touching individual users.
///
/// # Panics
///
/// Panics if any probability is negative or the total exceeds 1 beyond
/// floating-point slack.
pub fn sample_multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(probs.len());
    let mut remaining = n;
    let mut prob_left = 1.0f64;
    for (i, &p) in probs.iter().enumerate() {
        assert!(p >= 0.0, "negative probability at index {i}");
        if remaining == 0 || prob_left <= 0.0 {
            out.push(0);
            continue;
        }
        let cond = (p / prob_left).clamp(0.0, 1.0);
        let c = if i + 1 == probs.len() && (prob_left - p).abs() < 1e-9 {
            remaining // exhaust exactly when probabilities sum to 1
        } else {
            sample_binomial(rng, remaining, cond)
        };
        out.push(c);
        remaining -= c;
        prob_left -= p;
    }
    out
}

/// Scatters `n` trials uniformly over `k` categories (multinomial with
/// equal probabilities), exactly.
pub fn sample_uniform_multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, k: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k);
    let mut remaining = n;
    for i in 0..k {
        let left = (k - i) as f64;
        let c = if i + 1 == k {
            remaining
        } else {
            sample_binomial(rng, remaining, 1.0 / left)
        };
        out.push(c);
        remaining -= c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        (mean, var)
    }

    #[test]
    fn edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn small_n_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..60_000)
            .map(|_| sample_binomial(&mut rng, 20, 0.3))
            .collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 6.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.2).abs() < 0.15, "var {var}");
    }

    #[test]
    fn inversion_regime_moments() {
        // n large, n*p small -> geometric-gap path.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 1_000_000u64;
        let p = 1e-5;
        let samples: Vec<u64> = (0..40_000)
            .map(|_| sample_binomial(&mut rng, n, p))
            .collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!((var - 10.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gaussian_regime_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 1u64 << 26;
        let p = 0.25;
        let samples: Vec<u64> = (0..20_000)
            .map(|_| sample_binomial(&mut rng, n, p))
            .collect();
        let (mean, var) = moments(&samples);
        let true_mean = n as f64 * p;
        let true_var = n as f64 * p * (1.0 - p);
        assert!(
            (mean / true_mean - 1.0).abs() < 1e-3,
            "mean {mean} vs {true_mean}"
        );
        assert!(
            (var / true_var - 1.0).abs() < 0.05,
            "var {var} vs {true_var}"
        );
    }

    #[test]
    fn symmetry_path_moments() {
        // p > 0.5 goes through the complement branch.
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<u64> = (0..40_000)
            .map(|_| sample_binomial(&mut rng, 1000, 0.9))
            .collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 900.0).abs() < 1.0, "mean {mean}");
        assert!((var - 90.0).abs() < 4.0, "var {var}");
    }

    #[test]
    fn multinomial_sums_to_n_and_matches_probs() {
        let mut rng = StdRng::seed_from_u64(6);
        let probs = [0.5, 0.25, 0.125, 0.125];
        let mut totals = [0u64; 4];
        let n = 10_000u64;
        let reps = 200;
        for _ in 0..reps {
            let c = sample_multinomial(&mut rng, n, &probs);
            assert_eq!(c.iter().sum::<u64>(), n);
            for (t, v) in totals.iter_mut().zip(c.iter()) {
                *t += v;
            }
        }
        for (i, &p) in probs.iter().enumerate() {
            let frac = totals[i] as f64 / (n * reps) as f64;
            assert!((frac - p).abs() < 0.01, "category {i}: {frac} vs {p}");
        }
    }

    #[test]
    fn uniform_multinomial_exact_total() {
        let mut rng = StdRng::seed_from_u64(7);
        for k in [1usize, 2, 7, 64] {
            let c = sample_uniform_multinomial(&mut rng, 12_345, k);
            assert_eq!(c.len(), k);
            assert_eq!(c.iter().sum::<u64>(), 12_345);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
