//! Universal hashing for Optimal Local Hashing.
//!
//! OLH requires each user to sample a hash function `H : [D] → [g]` from a
//! universal family — collisions must behave uniformly
//! (`Pr[H(x) = H(y)] ≤ 1/g` for `x ≠ y`, footnote 1 of the paper). We use
//! the classic Carter–Wegman multiply-add family modulo the Mersenne prime
//! `P = 2^61 − 1`, reduced into `[g]`: `H_{a,b}(x) = ((a·x + b) mod P) mod g`.

use rand::{Rng, RngCore};

/// Mersenne prime `2^61 − 1`; all domain values must be below it (range
/// queries in this workspace cap at `D = 2^22`, far below).
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// One member of the universal family, identified by its coefficients.
///
/// The pair `(a, b)` is transmitted with each OLH report (in practice a PRG
/// seed; here the coefficients themselves — ~16 bytes, matching the "small
/// communication" claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UniversalHash {
    a: u64,
    b: u64,
    range: usize,
}

impl UniversalHash {
    /// Samples a function uniformly from the family, mapping into `[range]`.
    ///
    /// # Panics
    ///
    /// Panics if `range < 2` (OLH's hash range `g` is always ≥ 2).
    pub fn sample<R: RngCore + ?Sized>(range: usize, rng: &mut R) -> Self {
        assert!(range >= 2, "hash range must be at least 2, got {range}");
        let a = rng.random_range(1..MERSENNE_P);
        let b = rng.random_range(0..MERSENNE_P);
        Self { a, b, range }
    }

    /// Rebuilds a function from transmitted coefficients.
    #[must_use]
    pub fn from_parts(a: u64, b: u64, range: usize) -> Self {
        assert!(range >= 2);
        assert!((1..MERSENNE_P).contains(&a) && b < MERSENNE_P);
        Self { a, b, range }
    }

    /// The coefficients `(a, b)` — what the user actually transmits.
    #[must_use]
    pub fn parts(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// Output range `g`.
    #[must_use]
    pub fn range(&self) -> usize {
        self.range
    }

    /// Evaluates `H(x)` in `[range]`.
    #[inline]
    #[must_use]
    pub fn eval(&self, x: usize) -> usize {
        let x = x as u128;
        let v = (self.a as u128 * x + self.b as u128) % MERSENNE_P as u128;
        (v % self.range as u128) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outputs_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let h = UniversalHash::sample(4, &mut rng);
            for x in 0..1000 {
                assert!(h.eval(x) < 4);
            }
        }
    }

    #[test]
    fn roundtrips_through_parts() {
        let mut rng = StdRng::seed_from_u64(12);
        let h = UniversalHash::sample(7, &mut rng);
        let (a, b) = h.parts();
        let h2 = UniversalHash::from_parts(a, b, 7);
        for x in 0..100 {
            assert_eq!(h.eval(x), h2.eval(x));
        }
    }

    #[test]
    fn collision_probability_is_near_uniform() {
        // Empirical check of universality: over random functions, a fixed
        // pair collides with probability ≈ 1/g.
        let mut rng = StdRng::seed_from_u64(13);
        let g = 4;
        let trials = 20_000;
        let mut collisions = 0u32;
        for _ in 0..trials {
            let h = UniversalHash::sample(g, &mut rng);
            if h.eval(123) == h.eval(45_678) {
                collisions += 1;
            }
        }
        let rate = f64::from(collisions) / f64::from(trials);
        assert!((rate - 0.25).abs() < 0.02, "collision rate {rate}");
    }

    #[test]
    fn per_function_outputs_are_balanced_on_average() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = 4;
        let mut buckets = vec![0u64; g];
        for _ in 0..200 {
            let h = UniversalHash::sample(g, &mut rng);
            for x in 0..256 {
                buckets[h.eval(x)] += 1;
            }
        }
        let total: u64 = buckets.iter().sum();
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / total as f64;
            assert!((frac - 0.25).abs() < 0.02, "bucket {i}: {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_range() {
        let mut rng = StdRng::seed_from_u64(15);
        UniversalHash::sample(1, &mut rng);
    }
}
