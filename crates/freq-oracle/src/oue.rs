//! Optimized Unary Encoding (OUE) — Wang et al., adopted by paper §3.2.
//!
//! The user one-hot encodes her value over `[D]` and flips each bit
//! independently: a 1-bit stays 1 with probability `p = 1/2`; a 0-bit
//! becomes 1 with probability `q = 1/(1 + e^ε)`. The asymmetric choice
//! minimizes the estimator variance among unary encodings, giving
//! `VF = 4e^ε / (N (e^ε − 1)^2)` — independent of `D`.
//!
//! Communication is `D` bits per user, which is why the paper simulates the
//! aggregate for large domains; [`Oue::absorb_population`] implements that
//! exact simulation: the noisy count of item `j` is
//! `Bino(c_j, 1/2) + Bino(N − c_j, 1/(1+e^ε))` (§5, "Histogram estimation
//! primitives").

use rand::{Rng, RngCore};

use crate::binomial::sample_binomial;
use crate::oracle::PointOracle;
use crate::params::oue_probs;
use crate::variance::frequency_oracle_variance;
use crate::{Epsilon, OracleError};

/// One user's OUE report: the perturbed bit vector, bit-packed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OueReport {
    domain: usize,
    bits: Vec<u64>,
}

impl OueReport {
    /// Bit-packs a perturbed unary encoding (shared by OUE and SUE, which
    /// transmit the same wire format with different flip probabilities).
    ///
    /// # Panics
    ///
    /// Panics unless `bits.len() == domain`.
    #[must_use]
    pub fn from_bits(domain: usize, bits: &[bool]) -> Self {
        assert_eq!(bits.len(), domain);
        let mut packed = vec![0u64; domain.div_ceil(64)];
        for (j, &b) in bits.iter().enumerate() {
            if b {
                packed[j / 64] |= 1 << (j % 64);
            }
        }
        Self {
            domain,
            bits: packed,
        }
    }

    /// Whether bit `j` is set.
    #[inline]
    #[must_use]
    pub fn bit(&self, j: usize) -> bool {
        debug_assert!(j < self.domain);
        self.bits[j / 64] >> (j % 64) & 1 == 1
    }

    /// Number of items the report covers.
    #[must_use]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of set bits (used in tests; expected `≈ 1/2 + (D−1)·q`).
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// The packed 64-bit words of the bit vector (wire encoding).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a report from its packed words, returning `None` unless
    /// `domain > 0`, `words` has exactly `⌈domain/64⌉` entries, and no bit
    /// beyond `domain` is set — the single validation point shared by the
    /// wire decoder and [`OueReport::from_words`].
    #[must_use]
    pub fn try_from_words(domain: usize, words: Vec<u64>) -> Option<Self> {
        if domain == 0 || words.len() != domain.div_ceil(64) {
            return None;
        }
        if !domain.is_multiple_of(64) {
            let tail_mask = !0u64 << (domain % 64);
            if words.last().copied().unwrap_or(0) & tail_mask != 0 {
                return None;
            }
        }
        Some(Self {
            domain,
            bits: words,
        })
    }

    /// Rebuilds a report from its packed words (wire decoding).
    ///
    /// # Panics
    ///
    /// Panics unless `words` has exactly `⌈domain/64⌉` entries and no bit
    /// beyond `domain` is set.
    #[must_use]
    pub fn from_words(domain: usize, words: Vec<u64>) -> Self {
        Self::try_from_words(domain, words)
            .unwrap_or_else(|| panic!("invalid packed words for domain {domain}"))
    }
}

/// The OUE frequency oracle (client parameters + aggregator state).
#[derive(Debug, Clone)]
pub struct Oue {
    domain: usize,
    eps: Epsilon,
    p: f64,
    q: f64,
    /// Noisy 1-counts per item.
    counts: Vec<u64>,
    reports: u64,
}

impl Oue {
    /// Creates an OUE oracle over a domain of `domain` items.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::EmptyDomain`] for a zero-size domain.
    pub fn new(domain: usize, eps: Epsilon) -> Result<Self, OracleError> {
        if domain == 0 {
            return Err(OracleError::EmptyDomain);
        }
        let (p, q) = oue_probs(eps);
        Ok(Self {
            domain,
            eps,
            p,
            q,
            counts: vec![0; domain],
            reports: 0,
        })
    }

    /// The `(p, q)` bit-retention probabilities.
    #[must_use]
    pub fn probs(&self) -> (f64, f64) {
        (self.p, self.q)
    }

    /// The accumulated noisy 1-counts per item — together with
    /// [`PointOracle::num_reports`] the oracle's *complete* mutable state
    /// (everything else is derived from the configuration). This is what
    /// durable-storage checkpoints serialize.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Replaces the accumulator state with previously persisted counts —
    /// the restore dual of [`Oue::counts`]. Loading the counts read back
    /// from a checkpoint into a fresh oracle of the same configuration
    /// reproduces the checkpointed state bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::InvalidState`] when the count vector does
    /// not match the domain, or any per-item count exceeds `reports` (no
    /// report sequence can set a bit more than once per report). State is
    /// unchanged on error.
    pub fn load_state(&mut self, counts: Vec<u64>, reports: u64) -> Result<(), OracleError> {
        if counts.len() != self.domain {
            return Err(OracleError::InvalidState("count vector length != domain"));
        }
        if counts.iter().any(|&c| c > reports) {
            return Err(OracleError::InvalidState("item count above report total"));
        }
        self.counts = counts;
        self.reports = reports;
        Ok(())
    }

    /// Merges another shard's accumulator into this one (distributed
    /// aggregation: shards absorb disjoint user cohorts independently and
    /// are combined before estimation).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] unless both shards
    /// share the same domain (and therefore parameters).
    pub fn merge(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Removes a previously merged shard's accumulator — the exact inverse
    /// of [`Oue::merge`]: `merge(b)` followed by `subtract(b)` restores the
    /// state bit-for-bit. This is what lets a sliding window retire its
    /// oldest epoch without recomputing the surviving epochs from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on shape mismatch and
    /// [`OracleError::SubtractUnderflow`] if `other` holds counts this
    /// state does not contain (it was never merged in). The accumulator is
    /// unchanged on error.
    pub fn subtract(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        if self.reports < other.reports || self.counts.iter().zip(&other.counts).any(|(a, b)| a < b)
        {
            return Err(OracleError::SubtractUnderflow);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a -= b;
        }
        self.reports -= other.reports;
        Ok(())
    }
}

impl PointOracle for Oue {
    type Report = OueReport;

    fn domain(&self) -> usize {
        self.domain
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn encode(&self, value: usize, rng: &mut dyn RngCore) -> Result<OueReport, OracleError> {
        if value >= self.domain {
            return Err(OracleError::ValueOutOfDomain {
                value,
                domain: self.domain,
            });
        }
        let words = self.domain.div_ceil(64);
        let mut bits = vec![0u64; words];
        for j in 0..self.domain {
            let one = if j == value {
                rng.random::<f64>() < self.p
            } else {
                rng.random::<f64>() < self.q
            };
            if one {
                bits[j / 64] |= 1 << (j % 64);
            }
        }
        Ok(OueReport {
            domain: self.domain,
            bits,
        })
    }

    fn absorb(&mut self, report: &OueReport) -> Result<(), OracleError> {
        if report.domain != self.domain {
            return Err(OracleError::ReportDomainMismatch {
                report: report.domain,
                server: self.domain,
            });
        }
        // Walk set bits word-wise: with q = 1/(1+e^ε) most bits are clear,
        // so iterating `popcount` set positions beats testing all D bits.
        // The increments are the same as the per-bit loop, so the
        // accumulator state is bit-identical.
        for (wi, &word) in report.bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let j = wi * 64 + w.trailing_zeros() as usize;
                self.counts[j] += 1;
                w &= w - 1;
            }
        }
        self.reports += 1;
        Ok(())
    }

    fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), OracleError> {
        if true_counts.len() != self.domain {
            return Err(OracleError::ReportDomainMismatch {
                report: true_counts.len(),
                server: self.domain,
            });
        }
        let n: u64 = true_counts.iter().sum();
        for (j, &c) in true_counts.iter().enumerate() {
            // Bits are flipped independently per user and per item, so the
            // aggregate count decomposes into two independent binomials —
            // this is exact, not an approximation (given the regimes of the
            // binomial sampler).
            let kept = sample_binomial(rng, c, self.p);
            let flipped = sample_binomial(rng, n - c, self.q);
            self.counts[j] += kept + flipped;
        }
        self.reports += n;
        Ok(())
    }

    fn num_reports(&self) -> u64 {
        self.reports
    }

    fn estimate(&self) -> Vec<f64> {
        if self.reports == 0 {
            return vec![0.0; self.domain];
        }
        let n = self.reports as f64;
        let denom = self.p - self.q;
        self.counts
            .iter()
            .map(|&c| (c as f64 / n - self.q) / denom)
            .collect()
    }

    fn theoretical_variance(&self) -> f64 {
        frequency_oracle_variance(self.eps, self.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_domain() {
        assert_eq!(
            Oue::new(0, Epsilon::new(1.0)).unwrap_err(),
            OracleError::EmptyDomain
        );
    }

    #[test]
    fn rejects_out_of_domain_value() {
        let oracle = Oue::new(8, Epsilon::new(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            oracle.encode(8, &mut rng),
            Err(OracleError::ValueOutOfDomain {
                value: 8,
                domain: 8
            })
        ));
    }

    #[test]
    fn report_bit_statistics() {
        let eps = Epsilon::from_exp(3.0); // q = 1/4
        let oracle = Oue::new(64, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = 0u64;
        let reps = 2_000;
        for _ in 0..reps {
            let r = oracle.encode(5, &mut rng).unwrap();
            assert_eq!(r.domain(), 64);
            ones += u64::from(r.count_ones());
        }
        let expected = 0.5 + 63.0 * 0.25;
        let mean = ones as f64 / f64::from(reps);
        assert!(
            (mean - expected).abs() < 0.5,
            "mean ones {mean} vs {expected}"
        );
    }

    #[test]
    fn estimates_are_unbiased_per_user_path() {
        let eps = Epsilon::new(1.1);
        let mut oracle = Oue::new(16, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        // 60% of users hold item 3, 40% hold item 12.
        let n = 30_000;
        for i in 0..n {
            let v = if i % 5 < 3 { 3 } else { 12 };
            let r = oracle.encode(v, &mut rng).unwrap();
            oracle.absorb(&r).unwrap();
        }
        let est = oracle.estimate();
        assert!((est[3] - 0.6).abs() < 0.03, "est[3]={}", est[3]);
        assert!((est[12] - 0.4).abs() < 0.03, "est[12]={}", est[12]);
        assert!(est[0].abs() < 0.03);
    }

    #[test]
    fn simulated_population_matches_per_user_statistics() {
        let eps = Epsilon::new(1.1);
        let domain = 8;
        let counts: Vec<u64> = vec![5_000, 0, 1_000, 0, 2_000, 0, 0, 2_000];
        let n: u64 = counts.iter().sum();

        // Run both paths many times and compare estimate means/variances.
        let mut sim_est = vec![0.0; domain];
        let reps = 40;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..reps {
            let mut oracle = Oue::new(domain, eps).unwrap();
            oracle.absorb_population(&counts, &mut rng).unwrap();
            assert_eq!(oracle.num_reports(), n);
            for (s, e) in sim_est.iter_mut().zip(oracle.estimate()) {
                *s += e / f64::from(reps);
            }
        }
        for (j, &c) in counts.iter().enumerate() {
            let truth = c as f64 / n as f64;
            assert!(
                (sim_est[j] - truth).abs() < 0.01,
                "item {j}: {} vs {truth}",
                sim_est[j]
            );
        }
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let eps = Epsilon::new(1.0);
        let domain = 4;
        let counts = vec![2_000u64, 2_000, 2_000, 2_000];
        let n: u64 = counts.iter().sum();
        let mut rng = StdRng::seed_from_u64(4);
        let reps = 600;
        let mut sq_err = 0.0;
        for _ in 0..reps {
            let mut oracle = Oue::new(domain, eps).unwrap();
            oracle.absorb_population(&counts, &mut rng).unwrap();
            let est = oracle.estimate();
            sq_err += (est[0] - 0.25_f64).powi(2);
        }
        let empirical = sq_err / f64::from(reps);
        let theory = frequency_oracle_variance(eps, n);
        let ratio = empirical / theory;
        assert!(
            (0.7..1.3).contains(&ratio),
            "empirical {empirical} vs theory {theory}"
        );
    }

    #[test]
    fn absorb_rejects_mismatched_report() {
        let mut a = Oue::new(8, Epsilon::new(1.0)).unwrap();
        let b = Oue::new(16, Epsilon::new(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let r = b.encode(0, &mut rng).unwrap();
        assert!(matches!(
            a.absorb(&r),
            Err(OracleError::ReportDomainMismatch { .. })
        ));
    }

    #[test]
    fn estimate_without_reports_is_zero() {
        let oracle = Oue::new(4, Epsilon::new(1.0)).unwrap();
        assert_eq!(oracle.estimate(), vec![0.0; 4]);
    }
}
