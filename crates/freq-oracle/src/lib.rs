//! Locally differentially private frequency oracles (paper §3).
//!
//! A *frequency oracle* lets an untrusted aggregator estimate the frequency
//! of every item in a public domain `[D]` from one ε-LDP report per user.
//! This crate implements the three state-of-the-art primitives the paper
//! builds its range-query mechanisms on, behind the common
//! [`PointOracle`] trait:
//!
//! | Mechanism | Module | Communication | Aggregation | Variance |
//! |-----------|--------|---------------|-------------|----------|
//! | Optimized Unary Encoding | [`oue`] | `D` bits | `O(N·D)` bits, trivially parallel | `4e^ε/(N(e^ε−1)²)` |
//! | Optimal Local Hashing | [`olh`]| `O(log D)` bits | `O(N·D)` hash evals (slow) | same |
//! | Hadamard Randomized Response | [`hrr`] | `log2 D + 1` bits | `O(N + D log D)` | same |
//!
//! Supporting modules: [`grr`] (k-ary randomized response, used inside
//! OLH), [`hash`] (a universal hash family), [`binomial`] (population-scale
//! samplers powering the paper's statistically-equivalent simulations) and
//! [`variance`] (the shared theoretical `VF`).
//!
//! # Example
//!
//! ```
//! use ldp_freq_oracle::{Epsilon, Hrr, PointOracle};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let eps = Epsilon::from_exp(3.0);
//! let mut oracle = Hrr::new(16, eps).unwrap();
//! // 10k users, 80% holding item 3 and 20% holding item 12.
//! for i in 0..10_000 {
//!     let value = if i % 5 == 0 { 12 } else { 3 };
//!     let report = oracle.encode(value, &mut rng).unwrap();
//!     oracle.absorb(&report).unwrap();
//! }
//! let est = oracle.estimate();
//! assert!((est[3] - 0.8).abs() < 0.1);
//! ```

pub mod binomial;
pub mod error;
pub mod grr;
pub mod hash;
pub mod hrr;
pub mod olh;
pub mod oracle;
pub mod oue;
pub mod params;
pub mod sue;
pub mod variance;

pub use error::OracleError;
pub use grr::Grr;
pub use hash::UniversalHash;
pub use hrr::{Hrr, HrrReport};
pub use olh::{Olh, OlhReport};
pub use oracle::{FrequencyOracle, PointOracle};
pub use oue::{Oue, OueReport};
pub use params::{binary_rr_keep_prob, grr_keep_prob, olh_hash_range, oue_probs, Epsilon};
pub use sue::{sue_probs, sue_variance, Sue};
pub use variance::{frequency_oracle_variance, hrr_exact_variance, psi};

/// A frequency oracle of any of the three kinds, behind one concrete type.
///
/// The hierarchical-histogram framework is "agnostic to the choice of the
/// histogram estimation primitive F" (paper §5); this enum is how that
/// plug-in point is expressed without generics leaking into every
/// mechanism signature.
#[derive(Debug, Clone)]
pub enum AnyOracle {
    /// Optimized Unary Encoding.
    Oue(Oue),
    /// Optimal Local Hashing.
    Olh(Olh),
    /// Hadamard Randomized Response.
    Hrr(Hrr),
    /// Symmetric Unary Encoding (basic RAPPOR baseline).
    Sue(Sue),
}

/// A report from any oracle kind.
#[derive(Debug, Clone)]
pub enum AnyReport {
    /// An OUE bit vector.
    Oue(OueReport),
    /// An OLH (hash, value) pair.
    Olh(OlhReport),
    /// An HRR (index, bit) pair.
    Hrr(HrrReport),
    /// A SUE bit vector (same wire format as OUE).
    Sue(OueReport),
}

impl AnyOracle {
    /// Instantiates the requested primitive over `[domain]`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying constructor errors (empty domain; HRR on
    /// a non-power-of-two domain).
    pub fn new(kind: FrequencyOracle, domain: usize, eps: Epsilon) -> Result<Self, OracleError> {
        Ok(match kind {
            FrequencyOracle::Oue => Self::Oue(Oue::new(domain, eps)?),
            FrequencyOracle::Olh => Self::Olh(Olh::new(domain, eps)?),
            FrequencyOracle::Hrr => Self::Hrr(Hrr::new(domain, eps)?),
            FrequencyOracle::Sue => Self::Sue(Sue::new(domain, eps)?),
        })
    }

    /// Merges another shard of the same kind and shape into this one.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] when kinds or shapes
    /// differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), OracleError> {
        match (self, other) {
            (Self::Oue(a), Self::Oue(b)) => a.merge(b),
            (Self::Olh(a), Self::Olh(b)) => a.merge(b),
            (Self::Hrr(a), Self::Hrr(b)) => a.merge(b),
            (Self::Sue(a), Self::Sue(b)) => a.merge(b),
            (s, o) => Err(OracleError::ReportDomainMismatch {
                report: o.domain(),
                server: s.domain(),
            }),
        }
    }

    /// Removes a previously merged shard of the same kind and shape — the
    /// exact inverse of [`AnyOracle::merge`], enabling sliding-window
    /// aggregation (retire the oldest epoch by subtraction instead of
    /// recomputing the surviving epochs from scratch).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] when kinds or shapes
    /// differ and [`OracleError::SubtractUnderflow`] when `other` was
    /// never merged into this state.
    pub fn subtract(&mut self, other: &Self) -> Result<(), OracleError> {
        match (self, other) {
            (Self::Oue(a), Self::Oue(b)) => a.subtract(b),
            (Self::Olh(a), Self::Olh(b)) => a.subtract(b),
            (Self::Hrr(a), Self::Hrr(b)) => a.subtract(b),
            (Self::Sue(a), Self::Sue(b)) => a.subtract(b),
            (s, o) => Err(OracleError::ReportDomainMismatch {
                report: o.domain(),
                server: s.domain(),
            }),
        }
    }

    /// Checks — without mutating any state — that `report` has the kind
    /// and shape this oracle's `absorb` would accept. Lets multi-oracle
    /// aggregators (e.g. the budget-split server, which absorbs one layer
    /// per level) validate an entire report *before* touching any
    /// accumulator, so a mid-report rejection can never leave partially
    /// absorbed state behind.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] exactly when `absorb`
    /// would.
    pub fn validate(&self, report: &AnyReport) -> Result<(), OracleError> {
        let (report_shape, server_shape) = match (self, report) {
            (Self::Oue(o), AnyReport::Oue(r)) => (r.domain(), o.domain()),
            (Self::Sue(o), AnyReport::Sue(r)) => (r.domain(), o.domain()),
            (Self::Hrr(o), AnyReport::Hrr(r)) => (r.domain(), o.domain()),
            (Self::Olh(o), AnyReport::Olh(r)) => (r.hash().range(), o.hash_range()),
            (s, _) => (0, s.domain()),
        };
        if report_shape == server_shape {
            Ok(())
        } else {
            Err(OracleError::ReportDomainMismatch {
                report: report_shape,
                server: server_shape,
            })
        }
    }

    /// Which primitive this is.
    #[must_use]
    pub fn kind(&self) -> FrequencyOracle {
        match self {
            Self::Oue(_) => FrequencyOracle::Oue,
            Self::Olh(_) => FrequencyOracle::Olh,
            Self::Hrr(_) => FrequencyOracle::Hrr,
            Self::Sue(_) => FrequencyOracle::Sue,
        }
    }
}

impl PointOracle for AnyOracle {
    type Report = AnyReport;

    fn domain(&self) -> usize {
        match self {
            Self::Oue(o) => o.domain(),
            Self::Olh(o) => o.domain(),
            Self::Hrr(o) => o.domain(),
            Self::Sue(o) => o.domain(),
        }
    }

    fn epsilon(&self) -> Epsilon {
        match self {
            Self::Oue(o) => o.epsilon(),
            Self::Olh(o) => o.epsilon(),
            Self::Hrr(o) => o.epsilon(),
            Self::Sue(o) => o.epsilon(),
        }
    }

    fn encode(&self, value: usize, rng: &mut dyn rand::RngCore) -> Result<AnyReport, OracleError> {
        Ok(match self {
            Self::Oue(o) => AnyReport::Oue(o.encode(value, rng)?),
            Self::Olh(o) => AnyReport::Olh(o.encode(value, rng)?),
            Self::Hrr(o) => AnyReport::Hrr(o.encode(value, rng)?),
            Self::Sue(o) => AnyReport::Sue(o.encode(value, rng)?),
        })
    }

    fn absorb(&mut self, report: &AnyReport) -> Result<(), OracleError> {
        match (self, report) {
            (Self::Oue(o), AnyReport::Oue(r)) => o.absorb(r),
            (Self::Olh(o), AnyReport::Olh(r)) => o.absorb(r),
            (Self::Hrr(o), AnyReport::Hrr(r)) => o.absorb(r),
            (Self::Sue(o), AnyReport::Sue(r)) => o.absorb(r),
            (s, _) => Err(OracleError::ReportDomainMismatch {
                report: 0,
                server: s.domain(),
            }),
        }
    }

    fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn rand::RngCore,
    ) -> Result<(), OracleError> {
        match self {
            Self::Oue(o) => o.absorb_population(true_counts, rng),
            Self::Olh(o) => o.absorb_population(true_counts, rng),
            Self::Hrr(o) => o.absorb_population(true_counts, rng),
            Self::Sue(o) => o.absorb_population(true_counts, rng),
        }
    }

    fn num_reports(&self) -> u64 {
        match self {
            Self::Oue(o) => o.num_reports(),
            Self::Olh(o) => o.num_reports(),
            Self::Hrr(o) => o.num_reports(),
            Self::Sue(o) => o.num_reports(),
        }
    }

    fn estimate(&self) -> Vec<f64> {
        match self {
            Self::Oue(o) => o.estimate(),
            Self::Olh(o) => o.estimate(),
            Self::Hrr(o) => o.estimate(),
            Self::Sue(o) => o.estimate(),
        }
    }

    fn theoretical_variance(&self) -> f64 {
        match self {
            Self::Oue(o) => o.theoretical_variance(),
            Self::Olh(o) => o.theoretical_variance(),
            Self::Hrr(o) => o.theoretical_variance(),
            Self::Sue(o) => o.theoretical_variance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn any_oracle_dispatches_all_kinds() {
        let mut rng = StdRng::seed_from_u64(51);
        let eps = Epsilon::new(1.1);
        for kind in [
            FrequencyOracle::Oue,
            FrequencyOracle::Olh,
            FrequencyOracle::Hrr,
            FrequencyOracle::Sue,
        ] {
            let mut oracle = AnyOracle::new(kind, 8, eps).unwrap();
            assert_eq!(oracle.kind(), kind);
            assert_eq!(oracle.domain(), 8);
            for _ in 0..500 {
                let r = oracle.encode(3, &mut rng).unwrap();
                oracle.absorb(&r).unwrap();
            }
            let est = oracle.estimate();
            assert!((est[3] - 1.0).abs() < 0.35, "{kind}: est[3] = {}", est[3]);
        }
    }

    #[test]
    fn any_oracle_rejects_mismatched_reports() {
        let mut rng = StdRng::seed_from_u64(52);
        let eps = Epsilon::new(1.1);
        let oue = AnyOracle::new(FrequencyOracle::Oue, 8, eps).unwrap();
        let mut hrr = AnyOracle::new(FrequencyOracle::Hrr, 8, eps).unwrap();
        let r = oue.encode(0, &mut rng).unwrap();
        assert!(hrr.absorb(&r).is_err());
    }

    #[test]
    fn hrr_through_enum_requires_power_of_two() {
        let eps = Epsilon::new(1.1);
        assert!(AnyOracle::new(FrequencyOracle::Hrr, 12, eps).is_err());
        assert!(AnyOracle::new(FrequencyOracle::Oue, 12, eps).is_ok());
    }
}
