//! Optimal Local Hashing (OLH) — Wang et al., adopted by paper §3.2.
//!
//! Each user samples a universal hash `H : [D] → [g]` with `g = ⌊e^ε⌋ + 1`,
//! hashes her value, perturbs the hash with k-ary randomized response over
//! `[g]`, and transmits `(H, y)`. The aggregator counts, for every original
//! item `j`, how many reports *support* it (`H(j) = y`) and corrects the
//! bias: `θ̂[j] = (S[j]/N − 1/g)/(p − 1/g)`.
//!
//! OLH matches OUE's variance with far less communication, but decoding
//! costs `O(N·D)` — the paper drops it for large domains for exactly this
//! reason, and so do our benchmarks.

use rand::RngCore;

use crate::grr::Grr;
use crate::hash::UniversalHash;
use crate::oracle::PointOracle;
use crate::params::olh_hash_range;
use crate::variance::frequency_oracle_variance;
use crate::{Epsilon, OracleError};

/// One user's OLH report: her sampled hash function and perturbed hash
/// value — `O(log D)` bits in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlhReport {
    hash: UniversalHash,
    value: usize,
}

impl OlhReport {
    /// The transmitted hash function.
    #[must_use]
    pub fn hash(&self) -> UniversalHash {
        self.hash
    }

    /// The perturbed hash value in `[g]`.
    #[must_use]
    pub fn value(&self) -> usize {
        self.value
    }

    /// Rebuilds a report from its transmitted parts (wire decoding).
    ///
    /// # Panics
    ///
    /// Panics unless `value` lies in the hash's range.
    #[must_use]
    pub fn from_parts(hash: UniversalHash, value: usize) -> Self {
        assert!(
            value < hash.range(),
            "hash value {value} outside range {}",
            hash.range()
        );
        Self { hash, value }
    }
}

/// The OLH frequency oracle.
#[derive(Debug, Clone)]
pub struct Olh {
    domain: usize,
    eps: Epsilon,
    g: usize,
    grr: Grr,
    /// Support counts per original item.
    support: Vec<u64>,
    reports: u64,
}

impl Olh {
    /// Creates an OLH oracle over `domain` items with the variance-optimal
    /// hash range `g = ⌊e^ε⌋ + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::EmptyDomain`] for a zero-size domain.
    pub fn new(domain: usize, eps: Epsilon) -> Result<Self, OracleError> {
        if domain == 0 {
            return Err(OracleError::EmptyDomain);
        }
        let g = olh_hash_range(eps);
        Ok(Self {
            domain,
            eps,
            g,
            grr: Grr::new(g, eps),
            support: vec![0; domain],
            reports: 0,
        })
    }

    /// The hash range `g`.
    #[must_use]
    pub fn hash_range(&self) -> usize {
        self.g
    }

    /// The accumulated support counts per item — the oracle's complete
    /// mutable state (see [`crate::Oue::counts`]).
    #[must_use]
    pub fn support(&self) -> &[u64] {
        &self.support
    }

    /// Replaces the accumulator state with previously persisted support
    /// counts — the restore dual of [`Olh::support`] (see
    /// [`crate::Oue::load_state`]).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::InvalidState`] on a length mismatch or a
    /// per-item support above `reports` (each report supports an item at
    /// most once). State is unchanged on error.
    pub fn load_state(&mut self, support: Vec<u64>, reports: u64) -> Result<(), OracleError> {
        if support.len() != self.domain {
            return Err(OracleError::InvalidState("support vector length != domain"));
        }
        if support.iter().any(|&s| s > reports) {
            return Err(OracleError::InvalidState("item support above report total"));
        }
        self.support = support;
        self.reports = reports;
        Ok(())
    }

    /// Merges another shard's support counts into this one.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on shape mismatch.
    pub fn merge(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        for (a, b) in self.support.iter_mut().zip(&other.support) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Removes a previously merged shard's support counts — the exact
    /// inverse of [`Olh::merge`] (see [`crate::Oue::subtract`]).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on shape mismatch and
    /// [`OracleError::SubtractUnderflow`] if `other` was never merged into
    /// this state. The accumulator is unchanged on error.
    pub fn subtract(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        if self.reports < other.reports
            || self.support.iter().zip(&other.support).any(|(a, b)| a < b)
        {
            return Err(OracleError::SubtractUnderflow);
        }
        for (a, b) in self.support.iter_mut().zip(&other.support) {
            *a -= b;
        }
        self.reports -= other.reports;
        Ok(())
    }
}

impl PointOracle for Olh {
    type Report = OlhReport;

    fn domain(&self) -> usize {
        self.domain
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn encode(&self, value: usize, rng: &mut dyn RngCore) -> Result<OlhReport, OracleError> {
        if value >= self.domain {
            return Err(OracleError::ValueOutOfDomain {
                value,
                domain: self.domain,
            });
        }
        let hash = UniversalHash::sample(self.g, rng);
        let h = hash.eval(value);
        Ok(OlhReport {
            hash,
            value: self.grr.perturb(h, rng),
        })
    }

    fn absorb(&mut self, report: &OlhReport) -> Result<(), OracleError> {
        if report.hash.range() != self.g {
            return Err(OracleError::ReportDomainMismatch {
                report: report.hash.range(),
                server: self.g,
            });
        }
        // The O(D) support scan per report: this is the decode cost the
        // paper highlights as OLH's drawback.
        for (j, s) in self.support.iter_mut().enumerate() {
            if report.hash.eval(j) == report.value {
                *s += 1;
            }
        }
        self.reports += 1;
        Ok(())
    }

    fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), OracleError> {
        if true_counts.len() != self.domain {
            return Err(OracleError::ReportDomainMismatch {
                report: true_counts.len(),
                server: self.domain,
            });
        }
        // Supports of different items are correlated through the shared
        // hash function of each user, so unlike OUE there is no
        // per-item-independent shortcut: we simulate users honestly. This
        // costs O(N·D) and is only intended for modest N/D (the paper also
        // restricts OLH to its smallest domain).
        for (value, &count) in true_counts.iter().enumerate() {
            for _ in 0..count {
                let report = self.encode(value, rng)?;
                self.absorb(&report)?;
            }
        }
        Ok(())
    }

    fn num_reports(&self) -> u64 {
        self.reports
    }

    fn estimate(&self) -> Vec<f64> {
        if self.reports == 0 {
            return vec![0.0; self.domain];
        }
        let n = self.reports as f64;
        let inv_g = 1.0 / self.g as f64;
        let denom = self.grr.keep_prob() - inv_g;
        self.support
            .iter()
            .map(|&s| (s as f64 / n - inv_g) / denom)
            .collect()
    }

    fn theoretical_variance(&self) -> f64 {
        frequency_oracle_variance(self.eps, self.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hash_range_follows_epsilon() {
        let olh = Olh::new(10, Epsilon::from_exp(3.0)).unwrap();
        assert_eq!(olh.hash_range(), 4);
    }

    #[test]
    fn rejects_empty_domain() {
        assert_eq!(
            Olh::new(0, Epsilon::new(1.0)).unwrap_err(),
            OracleError::EmptyDomain
        );
    }

    #[test]
    fn rejects_out_of_domain() {
        let olh = Olh::new(4, Epsilon::new(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        assert!(olh.encode(4, &mut rng).is_err());
    }

    #[test]
    fn estimates_are_unbiased() {
        let eps = Epsilon::new(1.1);
        let mut olh = Olh::new(12, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let n = 40_000usize;
        for i in 0..n {
            let v = if i % 4 == 0 { 2 } else { 7 }; // 25% item 2, 75% item 7
            let r = olh.encode(v, &mut rng).unwrap();
            olh.absorb(&r).unwrap();
        }
        let est = olh.estimate();
        assert!((est[2] - 0.25).abs() < 0.04, "est[2]={}", est[2]);
        assert!((est[7] - 0.75).abs() < 0.04, "est[7]={}", est[7]);
        assert!(est[0].abs() < 0.04, "est[0]={}", est[0]);
    }

    #[test]
    fn population_path_equivalent_to_user_path() {
        let eps = Epsilon::new(1.0);
        let counts = vec![600u64, 0, 0, 400, 0, 0, 0, 0];
        let mut rng = StdRng::seed_from_u64(33);
        let mut mean_est = [0.0; 8];
        let reps = 30;
        for _ in 0..reps {
            let mut olh = Olh::new(8, eps).unwrap();
            olh.absorb_population(&counts, &mut rng).unwrap();
            assert_eq!(olh.num_reports(), 1_000);
            for (m, e) in mean_est.iter_mut().zip(olh.estimate()) {
                *m += e / f64::from(reps);
            }
        }
        assert!((mean_est[0] - 0.6).abs() < 0.03, "{}", mean_est[0]);
        assert!((mean_est[3] - 0.4).abs() < 0.03, "{}", mean_est[3]);
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let eps = Epsilon::new(1.0);
        let counts = vec![500u64; 4];
        let n: u64 = counts.iter().sum();
        let mut rng = StdRng::seed_from_u64(34);
        let reps = 400;
        let mut sq = 0.0;
        for _ in 0..reps {
            let mut olh = Olh::new(4, eps).unwrap();
            olh.absorb_population(&counts, &mut rng).unwrap();
            sq += (olh.estimate()[1] - 0.25_f64).powi(2);
        }
        let empirical = sq / f64::from(reps);
        let theory = frequency_oracle_variance(eps, n);
        let ratio = empirical / theory;
        assert!((0.7..1.35).contains(&ratio), "ratio {ratio}");
    }
}
