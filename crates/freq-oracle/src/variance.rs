//! Theoretical variance of the frequency oracles.

use crate::Epsilon;

/// The common per-item estimator variance of OUE, OLH and HRR (paper §3.2):
/// `VF = 4 e^ε / (N (e^ε − 1)^2)`.
///
/// Returns `f64::INFINITY` when no reports have been collected.
#[must_use]
pub fn frequency_oracle_variance(eps: Epsilon, num_reports: u64) -> f64 {
    if num_reports == 0 {
        return f64::INFINITY;
    }
    let e = eps.exp();
    4.0 * e / (num_reports as f64 * (e - 1.0) * (e - 1.0))
}

/// The ε-dependent constant `ψF(ε) = N·VF = 4 e^ε/(e^ε − 1)^2` used in the
/// proofs of §4.3 ("we can write VF ≤ ψF(ε)/N").
#[must_use]
pub fn psi(eps: Epsilon) -> f64 {
    let e = eps.exp();
    4.0 * e / ((e - 1.0) * (e - 1.0))
}

/// The *exact* per-item sampling variance of the HRR estimator:
/// `1/(N(2p−1)^2) = ((e^ε+1)/(e^ε−1))^2 / N = VF + 1/N`.
///
/// The paper's common bound `VF` counts only the randomized-response noise;
/// HRR additionally pays `1/N` because each user reveals a single uniformly
/// sampled coefficient (even at `ε → ∞` the estimator retains that
/// coefficient-sampling variance). The two coincide asymptotically for
/// small ε, which is why the paper treats the mechanisms as interchangeable
/// in its analysis.
#[must_use]
pub fn hrr_exact_variance(eps: Epsilon, num_reports: u64) -> f64 {
    if num_reports == 0 {
        return f64::INFINITY;
    }
    let e = eps.exp();
    let r = (e + 1.0) / (e - 1.0);
    r * r / num_reports as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form() {
        let eps = Epsilon::from_exp(3.0);
        let v = frequency_oracle_variance(eps, 1_000);
        assert!((v - 12.0 / (1_000.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn infinite_without_reports() {
        assert!(frequency_oracle_variance(Epsilon::new(1.0), 0).is_infinite());
    }

    #[test]
    fn psi_scales_variance() {
        let eps = Epsilon::new(0.7);
        assert!((psi(eps) / 500.0 - frequency_oracle_variance(eps, 500)).abs() < 1e-15);
    }

    #[test]
    fn variance_decreases_with_weaker_privacy() {
        let n = 1_000;
        let hi = frequency_oracle_variance(Epsilon::new(0.2), n);
        let lo = frequency_oracle_variance(Epsilon::new(1.4), n);
        assert!(hi > lo, "more privacy must mean more variance");
    }

    #[test]
    fn hrr_exact_exceeds_common_bound_by_one_over_n() {
        let eps = Epsilon::new(1.0);
        let n = 10_000u64;
        let diff = hrr_exact_variance(eps, n) - frequency_oracle_variance(eps, n);
        assert!((diff - 1.0 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn hrr_variance_derivation_matches_common_form() {
        // §3.2 derives VF = 4p(1−p)/(N(2p−1)^2) with p = e^eps/(1+e^eps);
        // check it coincides with the 4e^eps/(N(e^eps−1)^2) form.
        for eps_v in [0.2, 0.8, 1.1, 1.4] {
            let eps = Epsilon::new(eps_v);
            let e = eps.exp();
            let p = e / (1.0 + e);
            let via_p = 4.0 * p * (1.0 - p) / ((2.0 * p - 1.0) * (2.0 * p - 1.0));
            assert!((via_p - psi(eps)).abs() < 1e-9, "eps={eps_v}");
        }
    }
}
