//! The frequency-oracle abstraction shared by all point-query mechanisms.

use rand::RngCore;

use crate::{Epsilon, OracleError};

/// A locally differentially private frequency oracle over a finite domain
/// `[D]` (paper §3.2).
///
/// One instance plays both roles of the protocol:
///
/// * **client side** — [`PointOracle::encode`] is a pure function of the
///   oracle's public parameters; it perturbs a single user's value into a
///   report. Nothing about other users is consulted, so calling it is
///   exactly what an end-user device would do.
/// * **aggregator side** — [`PointOracle::absorb`] accumulates reports and
///   [`PointOracle::estimate`] applies the mechanism's bias correction to
///   produce unbiased frequency estimates `θ̂`.
///
/// For population-scale experiments, [`PointOracle::absorb_population`]
/// draws the *aggregate* the server would have received from a cohort with
/// the given true counts — the statistically equivalent simulation the
/// paper uses to reach `N = 2^26` (§5).
pub trait PointOracle {
    /// The message one user transmits.
    type Report: Clone;

    /// Domain size `D`.
    fn domain(&self) -> usize;

    /// Privacy budget ε of each report.
    fn epsilon(&self) -> Epsilon;

    /// Perturbs one user's `value ∈ [D]` into a transmittable report.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ValueOutOfDomain`] when `value ≥ D`.
    fn encode(&self, value: usize, rng: &mut dyn RngCore) -> Result<Self::Report, OracleError>;

    /// Accumulates one report on the aggregator.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] if the report shape
    /// does not match this oracle's domain.
    fn absorb(&mut self, report: &Self::Report) -> Result<(), OracleError>;

    /// Absorbs an entire cohort at once: `true_counts[z]` users hold value
    /// `z`. Statistically equivalent to encoding and absorbing each user
    /// individually, but orders of magnitude faster.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] if
    /// `true_counts.len() != D`.
    fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), OracleError>;

    /// Number of reports absorbed so far.
    fn num_reports(&self) -> u64;

    /// Unbiased estimates `θ̂[z]` of the fraction of users holding each
    /// value. All-zero if no reports have been absorbed.
    fn estimate(&self) -> Vec<f64>;

    /// The theoretical per-item estimator variance `VF` for the current
    /// number of absorbed reports (paper §3.2: `≈ 4e^ε / (N (e^ε − 1)^2)`
    /// for all three mechanisms).
    fn theoretical_variance(&self) -> f64;
}

/// Which frequency-oracle primitive to instantiate — the `F` parameter of
/// the paper's mechanism framework (§4.4: "All algorithms follow a similar
/// structure but differ on the perturbation primitive F they use").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrequencyOracle {
    /// Optimized Unary Encoding (Wang et al.).
    Oue,
    /// Optimal Local Hashing (Wang et al.).
    Olh,
    /// Hadamard Randomized Response.
    Hrr,
    /// Symmetric Unary Encoding (basic RAPPOR) — the historical baseline
    /// OUE optimizes; kept for ablations.
    Sue,
}

impl FrequencyOracle {
    /// Human-readable name as used in the paper's plots (`OUE`, `OLH`,
    /// `HRR`; `SUE` for the RAPPOR baseline).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Oue => "OUE",
            Self::Olh => "OLH",
            Self::Hrr => "HRR",
            Self::Sue => "SUE",
        }
    }

    /// Whether the primitive restricts the domain to powers of two.
    #[must_use]
    pub fn requires_power_of_two(self) -> bool {
        matches!(self, Self::Hrr)
    }
}

impl std::fmt::Display for FrequencyOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(FrequencyOracle::Oue.to_string(), "OUE");
        assert_eq!(FrequencyOracle::Olh.to_string(), "OLH");
        assert_eq!(FrequencyOracle::Hrr.to_string(), "HRR");
    }

    #[test]
    fn only_hrr_needs_power_of_two() {
        assert!(FrequencyOracle::Hrr.requires_power_of_two());
        assert!(!FrequencyOracle::Oue.requires_power_of_two());
        assert!(!FrequencyOracle::Olh.requires_power_of_two());
    }
}
