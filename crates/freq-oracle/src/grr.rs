//! Generalized (k-ary) Randomized Response.
//!
//! The categorical generalization of Warner's randomized response used
//! inside OLH (paper §3.2, citing Kairouz et al.): report the true value
//! with probability `p = e^ε/(e^ε + k − 1)` and each of the other `k − 1`
//! values with probability `(1 − p)/(k − 1)`. The likelihood ratio between
//! any two inputs for any output is then exactly `e^ε`.
//!
//! Note: the paper's prose says the lie is sampled "u.a.r from \[g\]"
//! (including the truth); the variance expression it then quotes,
//! `4p(1−p)/(N(2p−1)^2)` with the estimator `(S/N − 1/g)/(p − 1/g)`, is the
//! one for the *exclude-the-truth* variant of Wang et al., which is what we
//! implement — otherwise the stated estimator would be biased.

use rand::{Rng, RngCore};

use crate::params::grr_keep_prob;
use crate::Epsilon;

/// A k-ary randomized-response perturbation.
#[derive(Debug, Clone, Copy)]
pub struct Grr {
    k: usize,
    p: f64,
}

impl Grr {
    /// Builds GRR over `k ≥ 2` categories.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    #[must_use]
    pub fn new(k: usize, eps: Epsilon) -> Self {
        Self {
            k,
            p: grr_keep_prob(eps, k),
        }
    }

    /// Number of categories.
    #[must_use]
    pub fn categories(&self) -> usize {
        self.k
    }

    /// Probability of reporting the truth.
    #[must_use]
    pub fn keep_prob(&self) -> f64 {
        self.p
    }

    /// Probability of reporting one *specific* false value.
    #[must_use]
    pub fn lie_prob(&self) -> f64 {
        (1.0 - self.p) / (self.k as f64 - 1.0)
    }

    /// Perturbs `value ∈ [k]`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `value < k`.
    pub fn perturb<R: RngCore + ?Sized>(&self, value: usize, rng: &mut R) -> usize {
        debug_assert!(value < self.k);
        if rng.random::<f64>() < self.p {
            return value;
        }
        // Uniform over the other k − 1 values.
        let r = rng.random_range(0..self.k - 1);
        if r >= value {
            r + 1
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keeps_truth_at_expected_rate() {
        let grr = Grr::new(4, Epsilon::from_exp(3.0)); // p = 3/6 = 0.5
        assert!((grr.keep_prob() - 0.5).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 40_000;
        let kept = (0..trials)
            .filter(|_| grr.perturb(2, &mut rng) == 2)
            .count();
        let rate = kept as f64 / f64::from(trials);
        assert!((rate - 0.5).abs() < 0.01, "kept rate {rate}");
    }

    #[test]
    fn lies_are_uniform_over_other_values() {
        let grr = Grr::new(5, Epsilon::new(0.5));
        let mut rng = StdRng::seed_from_u64(22);
        let mut buckets = [0u64; 5];
        let trials = 100_000u64;
        for _ in 0..trials {
            buckets[grr.perturb(1, &mut rng)] += 1;
        }
        let lie = grr.lie_prob();
        for (v, &b) in buckets.iter().enumerate() {
            let rate = b as f64 / trials as f64;
            let expect = if v == 1 { grr.keep_prob() } else { lie };
            assert!(
                (rate - expect).abs() < 0.01,
                "value {v}: {rate} vs {expect}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for k in [2usize, 3, 17] {
            let grr = Grr::new(k, Epsilon::new(1.1));
            let total = grr.keep_prob() + grr.lie_prob() * (k as f64 - 1.0);
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ldp_ratio_holds_for_every_output() {
        let grr = Grr::new(6, Epsilon::new(0.8));
        let e = 0.8f64.exp();
        // For output o: Pr[o | v=o] = p, Pr[o | v≠o] = lie. Ratio = e^eps.
        assert!((grr.keep_prob() / grr.lie_prob() - e).abs() < 1e-9);
    }
}
