//! Hadamard Randomized Response (HRR) — paper §3.2.
//!
//! Each user samples one Hadamard index `j ∈ [D]` uniformly, computes the
//! single ±1 coefficient `φ[v][j] = (−1)^{⟨v, j⟩}` of her (scaled) one-hot
//! input, and reports it through binary randomized response with keep
//! probability `p = e^ε/(1 + e^ε)`. The whole report is `⌈log2 D⌉ + 1`
//! bits. The aggregator averages reports per index into unbiased Hadamard
//! coefficient estimates and inverts the transform in `O(N + D log D)`.
//!
//! HRR natively supports *signed* one-hot inputs (`±e_v`): negating the
//! input negates every coefficient but keeps it in {−1, +1}. That is
//! exactly what the Haar mechanism needs to release wavelet levels
//! (paper §4.6), exposed here as [`Hrr::encode_signed`]. With `D = 1` the
//! mechanism degenerates to plain one-bit randomized response, which the
//! Haar mechanism uses at its root level.

use rand::{Rng, RngCore};

use ldp_transforms::{fwht, hadamard_entry};

use crate::binomial::{sample_binomial, sample_uniform_multinomial};
use crate::oracle::PointOracle;
use crate::params::binary_rr_keep_prob;
use crate::variance::frequency_oracle_variance;
use crate::{Epsilon, OracleError};

/// One user's HRR report: the sampled coefficient index and the perturbed
/// ±1 coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HrrReport {
    domain: usize,
    index: usize,
    bit: i8,
}

impl HrrReport {
    /// The sampled Hadamard index `j`.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The perturbed coefficient, −1 or +1.
    #[must_use]
    pub fn bit(&self) -> i8 {
        self.bit
    }

    /// The domain size this report was encoded against.
    #[must_use]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Rebuilds a report from its transmitted parts (wire decoding).
    ///
    /// # Panics
    ///
    /// Panics unless `index < domain` and `bit` is ±1.
    #[must_use]
    pub fn from_parts(domain: usize, index: usize, bit: i8) -> Self {
        assert!(index < domain, "index {index} outside domain {domain}");
        assert!(bit == 1 || bit == -1, "bit must be ±1, got {bit}");
        Self { domain, index, bit }
    }
}

/// The HRR frequency oracle.
#[derive(Debug, Clone)]
pub struct Hrr {
    domain: usize,
    eps: Epsilon,
    p: f64,
    /// Per-index sums of reported ±1 bits.
    sums: Vec<i64>,
    reports: u64,
}

impl Hrr {
    /// Creates an HRR oracle; the domain must be a power of two.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::EmptyDomain`] or
    /// [`OracleError::DomainNotPowerOfTwo`].
    pub fn new(domain: usize, eps: Epsilon) -> Result<Self, OracleError> {
        if domain == 0 {
            return Err(OracleError::EmptyDomain);
        }
        if !domain.is_power_of_two() {
            return Err(OracleError::DomainNotPowerOfTwo(domain));
        }
        Ok(Self {
            domain,
            eps,
            p: binary_rr_keep_prob(eps),
            sums: vec![0; domain],
            reports: 0,
        })
    }

    /// Keep probability of the embedded binary randomized response.
    #[must_use]
    pub fn keep_prob(&self) -> f64 {
        self.p
    }

    /// The accumulated per-index ±1 coefficient sums — the oracle's
    /// complete mutable state (see [`crate::Oue::counts`]).
    #[must_use]
    pub fn sums(&self) -> &[i64] {
        &self.sums
    }

    /// Replaces the accumulator state with previously persisted
    /// coefficient sums — the restore dual of [`Hrr::sums`] (see
    /// [`crate::Oue::load_state`]).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::InvalidState`] on a length mismatch or a
    /// sum whose magnitude exceeds `reports` (each report moves exactly
    /// one index by ±1). State is unchanged on error.
    pub fn load_state(&mut self, sums: Vec<i64>, reports: u64) -> Result<(), OracleError> {
        if sums.len() != self.domain {
            return Err(OracleError::InvalidState("sum vector length != domain"));
        }
        if sums.iter().any(|&s| s.unsigned_abs() > reports) {
            return Err(OracleError::InvalidState(
                "coefficient sum magnitude above report total",
            ));
        }
        self.sums = sums;
        self.reports = reports;
        Ok(())
    }

    /// Merges another shard's accumulator into this one.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on shape mismatch.
    pub fn merge(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Removes a previously merged shard's coefficient sums — the exact
    /// inverse of [`Hrr::merge`] (see [`crate::Oue::subtract`]). The ±1
    /// sums are signed, so only the report count can witness that `other`
    /// was never merged in.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on shape mismatch and
    /// [`OracleError::SubtractUnderflow`] when `other` reflects more
    /// reports than this state. The accumulator is unchanged on error.
    pub fn subtract(&mut self, other: &Self) -> Result<(), OracleError> {
        if other.domain != self.domain || other.eps != self.eps {
            return Err(OracleError::ReportDomainMismatch {
                report: other.domain,
                server: self.domain,
            });
        }
        if self.reports < other.reports {
            return Err(OracleError::SubtractUnderflow);
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a -= b;
        }
        self.reports -= other.reports;
        Ok(())
    }

    /// Encodes a *signed* one-hot input `sign·e_value` (`sign ∈ {−1, +1}`).
    ///
    /// This is the primitive the Haar mechanism perturbs its wavelet levels
    /// with; [`PointOracle::encode`] is the `sign = +1` special case.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ValueOutOfDomain`] when `value ≥ D`.
    pub fn encode_signed(
        &self,
        value: usize,
        sign: i8,
        rng: &mut dyn RngCore,
    ) -> Result<HrrReport, OracleError> {
        debug_assert!(sign == 1 || sign == -1);
        if value >= self.domain {
            return Err(OracleError::ValueOutOfDomain {
                value,
                domain: self.domain,
            });
        }
        let index = rng.random_range(0..self.domain);
        let coeff = hadamard_entry(value, index) * sign;
        let bit = if rng.random::<f64>() < self.p {
            coeff
        } else {
            -coeff
        };
        Ok(HrrReport {
            domain: self.domain,
            index,
            bit,
        })
    }

    /// Absorbs an aggregate cohort with *signed* one-hot inputs:
    /// `plus[z]` users hold `+e_z` and `minus[z]` users hold `−e_z`.
    ///
    /// Statistically equivalent to per-user encoding up to two documented
    /// approximations that are negligible at population scale: the split of
    /// each index's users into +1/−1 coefficient holders uses a binomial in
    /// place of a hypergeometric (relative error `O(N_j/N)`), and large
    /// binomials use a Gaussian tail (see [`crate::binomial`]).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::ReportDomainMismatch`] on length mismatch.
    pub fn absorb_population_signed(
        &mut self,
        plus: &[u64],
        minus: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), OracleError> {
        if plus.len() != self.domain || minus.len() != self.domain {
            return Err(OracleError::ReportDomainMismatch {
                report: plus.len().max(minus.len()),
                server: self.domain,
            });
        }
        let total: u64 = plus.iter().sum::<u64>() + minus.iter().sum::<u64>();
        if total == 0 {
            return Ok(());
        }
        // m_j = Σ_z (plus_z − minus_z)·(−1)^{⟨z,j⟩}: one FWHT over the
        // signed counts gives, for every index, how many users hold a +1
        // coefficient: A_j = (total + m_j)/2.
        let mut m: Vec<f64> = plus
            .iter()
            .zip(minus.iter())
            .map(|(&a, &b)| a as f64 - b as f64)
            .collect();
        fwht(&mut m);
        // Scatter users over indices (exact multinomial), then simulate the
        // binary randomized response of each index's cohort in aggregate.
        let per_index = sample_uniform_multinomial(rng, total, self.domain);
        for (j, &nj) in per_index.iter().enumerate() {
            if nj == 0 {
                continue;
            }
            let frac_plus = ((total as f64 + m[j]) / (2.0 * total as f64)).clamp(0.0, 1.0);
            let n_plus = sample_binomial(rng, nj, frac_plus);
            let n_minus = nj - n_plus;
            // +1 reports: truthful plus-holders and lying minus-holders.
            let t =
                sample_binomial(rng, n_plus, self.p) + sample_binomial(rng, n_minus, 1.0 - self.p);
            self.sums[j] += 2 * t as i64 - nj as i64;
        }
        self.reports += total;
        Ok(())
    }

    /// Estimated Hadamard coefficients `m̂_j ≈ Σ_z θ_z (−1)^{⟨z,j⟩}` of the
    /// (possibly signed) frequency vector, before inversion.
    #[must_use]
    pub fn coefficient_estimates(&self) -> Vec<f64> {
        if self.reports == 0 {
            return vec![0.0; self.domain];
        }
        let scale = self.domain as f64 / (self.reports as f64 * (2.0 * self.p - 1.0));
        self.sums.iter().map(|&s| s as f64 * scale).collect()
    }
}

impl PointOracle for Hrr {
    type Report = HrrReport;

    fn domain(&self) -> usize {
        self.domain
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn encode(&self, value: usize, rng: &mut dyn RngCore) -> Result<HrrReport, OracleError> {
        self.encode_signed(value, 1, rng)
    }

    fn absorb(&mut self, report: &HrrReport) -> Result<(), OracleError> {
        if report.domain != self.domain {
            return Err(OracleError::ReportDomainMismatch {
                report: report.domain,
                server: self.domain,
            });
        }
        debug_assert!(report.index < self.domain);
        self.sums[report.index] += i64::from(report.bit);
        self.reports += 1;
        Ok(())
    }

    fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), OracleError> {
        let minus = vec![0u64; true_counts.len()];
        self.absorb_population_signed(true_counts, &minus, rng)
    }

    fn num_reports(&self) -> u64 {
        self.reports
    }

    fn estimate(&self) -> Vec<f64> {
        let mut m = self.coefficient_estimates();
        // θ = (1/D)·φ·m : invert the (unnormalized) Hadamard transform.
        ldp_transforms::fwht_inverse(&mut m);
        m
    }

    fn theoretical_variance(&self) -> f64 {
        frequency_oracle_variance(self.eps, self.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_domains() {
        assert_eq!(
            Hrr::new(0, Epsilon::new(1.0)).unwrap_err(),
            OracleError::EmptyDomain
        );
        assert_eq!(
            Hrr::new(12, Epsilon::new(1.0)).unwrap_err(),
            OracleError::DomainNotPowerOfTwo(12)
        );
        assert!(Hrr::new(1, Epsilon::new(1.0)).is_ok());
    }

    #[test]
    fn report_is_log_d_plus_one_bits() {
        // The report content is just (index, ±1): check the index range.
        let oracle = Hrr::new(16, Epsilon::new(1.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..100 {
            let r = oracle.encode(7, &mut rng).unwrap();
            assert!(r.index() < 16);
            assert!(r.bit() == 1 || r.bit() == -1);
        }
    }

    #[test]
    fn estimates_are_unbiased_per_user_path() {
        let eps = Epsilon::new(1.1);
        let mut oracle = Hrr::new(8, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 60_000;
        for i in 0..n {
            let v = if i % 2 == 0 { 1 } else { 6 };
            let r = oracle.encode(v, &mut rng).unwrap();
            oracle.absorb(&r).unwrap();
        }
        let est = oracle.estimate();
        assert!((est[1] - 0.5).abs() < 0.04, "est[1]={}", est[1]);
        assert!((est[6] - 0.5).abs() < 0.04, "est[6]={}", est[6]);
        assert!(est[0].abs() < 0.04, "est[0]={}", est[0]);
        // Estimates always sum to ~the total mass picked up by index 0.
        let sum: f64 = est.iter().sum();
        assert!((sum - 1.0).abs() < 0.1, "sum {sum}");
    }

    #[test]
    fn signed_encoding_estimates_signed_mass() {
        let eps = Epsilon::new(2.0);
        let mut oracle = Hrr::new(4, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let n = 60_000;
        // Half the users hold +e_2, half hold −e_3.
        for i in 0..n {
            let r = if i % 2 == 0 {
                oracle.encode_signed(2, 1, &mut rng).unwrap()
            } else {
                oracle.encode_signed(3, -1, &mut rng).unwrap()
            };
            oracle.absorb(&r).unwrap();
        }
        let est = oracle.estimate();
        assert!((est[2] - 0.5).abs() < 0.04, "est[2]={}", est[2]);
        assert!((est[3] + 0.5).abs() < 0.04, "est[3]={}", est[3]);
        assert!(est[0].abs() < 0.04);
    }

    #[test]
    fn population_path_matches_user_path_mean() {
        let eps = Epsilon::new(1.0);
        let plus = vec![3_000u64, 0, 1_000, 0];
        let minus = vec![0u64, 0, 0, 1_000];
        let mut rng = StdRng::seed_from_u64(44);
        let mut mean = [0.0; 4];
        let reps = 60;
        for _ in 0..reps {
            let mut oracle = Hrr::new(4, eps).unwrap();
            oracle
                .absorb_population_signed(&plus, &minus, &mut rng)
                .unwrap();
            assert_eq!(oracle.num_reports(), 5_000);
            for (m, e) in mean.iter_mut().zip(oracle.estimate()) {
                *m += e / f64::from(reps);
            }
        }
        assert!((mean[0] - 0.6).abs() < 0.02, "{}", mean[0]);
        assert!((mean[2] - 0.2).abs() < 0.02, "{}", mean[2]);
        assert!((mean[3] + 0.2).abs() < 0.02, "{}", mean[3]);
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let eps = Epsilon::new(1.0);
        let counts = vec![1_000u64; 8];
        let n: u64 = counts.iter().sum();
        let mut rng = StdRng::seed_from_u64(45);
        let reps = 500;
        let mut sq = 0.0;
        for _ in 0..reps {
            let mut oracle = Hrr::new(8, eps).unwrap();
            oracle.absorb_population(&counts, &mut rng).unwrap();
            sq += (oracle.estimate()[2] - 0.125_f64).powi(2);
        }
        let empirical = sq / f64::from(reps);
        // HRR's exact variance includes the coefficient-sampling term 1/N
        // on top of the common bound VF (see `variance::hrr_exact_variance`).
        let theory = crate::variance::hrr_exact_variance(eps, n);
        let ratio = empirical / theory;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
        assert!(empirical > frequency_oracle_variance(eps, n) * 0.7);
    }

    #[test]
    fn domain_one_acts_as_binary_rr() {
        let eps = Epsilon::from_exp(3.0); // keep prob 0.75
        let mut oracle = Hrr::new(1, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(46);
        // 70% of users hold +1, 30% hold −1 (a signed mean of 0.4).
        let n = 40_000;
        for i in 0..n {
            let sign = if i % 10 < 7 { 1 } else { -1 };
            let r = oracle.encode_signed(0, sign, &mut rng).unwrap();
            oracle.absorb(&r).unwrap();
        }
        let est = oracle.estimate();
        assert_eq!(est.len(), 1);
        assert!((est[0] - 0.4).abs() < 0.03, "est {}", est[0]);
    }
}
