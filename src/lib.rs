//! # ldp-range-queries
//!
//! Façade crate for the reproduction of *"Answering Range Queries Under
//! Local Differential Privacy"* (Cormode, Kulkarni, Srivastava — SIGMOD
//! 2019). It re-exports every workspace crate under one roof so examples
//! and downstream users can depend on a single package:
//!
//! * [`oracle`] — LDP frequency oracles (RR, GRR, OUE, OLH, HRR).
//! * [`transforms`] — Hadamard/Haar transforms and B-adic decompositions.
//! * [`ranges`] — the paper's range-query mechanisms (flat, hierarchical
//!   histograms with constrained inference, HaarHRR), prefix/CDF and
//!   quantile queries, and the 2-D extension.
//! * [`centralized`] — trusted-aggregator baselines used for the
//!   centralized-vs-local comparison (paper Figure 7).
//! * [`workloads`] — synthetic data generators and query workloads.
//! * [`eval`] — the experiment harness that regenerates every table and
//!   figure of the paper's evaluation section.
//! * [`service`] — the sharded aggregation service: a versioned wire
//!   format for every report type, parallel shard-local ingestion with
//!   exact merging, and snapshot-isolated range/prefix/quantile serving.
//!
//! ## Quick start
//!
//! ```
//! use ldp_range_queries::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let domain = 256;
//! let eps = Epsilon::new(1.1);
//!
//! // Users each hold one value in [0, 256); here: a synthetic population.
//! let data: Vec<usize> = (0..60_000).map(|i| (i * 37) % domain).collect();
//!
//! // Hierarchical-histogram mechanism with fanout 4 + consistency.
//! let config = HhConfig::new(domain, 4, eps).expect("valid config");
//! let mut server = HhServer::new(config.clone()).expect("server");
//! let client = HhClient::new(config).expect("client");
//! for &z in &data {
//!     let report = client.report(z, &mut rng).expect("in domain");
//!     server.absorb(&report).expect("matching shape");
//! }
//! let est = server.estimate_consistent();
//! let answer = est.range(10, 99);
//! let truth = data.iter().filter(|&&z| (10..=99).contains(&z)).count() as f64
//!     / data.len() as f64;
//! assert!((answer - truth).abs() < 0.1);
//! ```

pub use cdp_baselines as centralized;
pub use ldp_eval as eval;
pub use ldp_freq_oracle as oracle;
pub use ldp_ranges as ranges;
pub use ldp_service as service;
pub use ldp_transforms as transforms;
pub use ldp_workloads as workloads;

/// Convenient glob-import surface covering the common types.
pub mod prelude {
    pub use ldp_freq_oracle::{AnyOracle, Epsilon, FrequencyOracle, Hrr, Olh, Oue, PointOracle};
    pub use ldp_ranges::{
        quantile, FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer,
        HhClient, HhConfig, HhServer, MergeableServer, RangeEstimate, RangeMechanism,
    };
    pub use ldp_workloads::{CauchyParams, Dataset, DistributionKind, QueryWorkload};
}
