//! Smoke tests over the full experiment harness: every figure/table
//! pipeline runs at miniature scale and exhibits the orderings the paper
//! reports.

use ldp_range_queries::eval::{experiments, EvalContext};

fn ctx() -> EvalContext {
    EvalContext {
        population: 1 << 15,
        repetitions: 2,
        seed: 31,
        domains: vec![256],
        full_scale: false,
    }
}

#[test]
fn fig4_flat_loses_badly_on_long_ranges() {
    let table = experiments::fig4::run(&ctx());
    // Pull (method → mse) for the longest range length present.
    let max_r: usize = table
        .rows()
        .iter()
        .map(|r| r[1].parse::<usize>().unwrap())
        .max()
        .unwrap();
    let mse_of = |method: &str| -> f64 {
        table
            .rows()
            .iter()
            .filter(|r| r[1].parse::<usize>().unwrap() == max_r && r[2] == method)
            .map(|r| r[4].parse::<f64>().unwrap())
            .fold(f64::INFINITY, f64::min)
    };
    let flat = mse_of("FlatOUE");
    let hh_ci = mse_of("TreeOUECI");
    let haar = mse_of("HaarHRR");
    assert!(
        flat > 3.0 * hh_ci,
        "flat {flat} should lose to consistent HH {hh_ci} on r = {max_r}"
    );
    assert!(
        flat > 3.0 * haar,
        "flat {flat} should lose to HaarHRR {haar}"
    );
}

#[test]
fn fig4_ci_never_hurts_much() {
    let table = experiments::fig4::run(&ctx());
    // For each (r, B), TreeOUECI ≤ TreeOUE within noise slack.
    for row in table.rows().iter().filter(|r| r[2] == "TreeOUECI") {
        let (r, b) = (&row[1], &row[3]);
        let raw = table
            .rows()
            .iter()
            .find(|x| x[2] == "TreeOUE" && &x[1] == r && &x[3] == b)
            .expect("matching raw row");
        let ci_mse: f64 = row[4].parse().unwrap();
        let raw_mse: f64 = raw[4].parse().unwrap();
        assert!(
            ci_mse <= raw_mse * 1.6 + 1e-3,
            "r={r} B={b}: CI {ci_mse} vs raw {raw_mse}"
        );
    }
}

#[test]
fn tab5_error_decreases_with_epsilon() {
    let table = experiments::tab5::run(&ctx());
    // For every method column, eps = 0.2 must have higher error than
    // eps = 1.4.
    let first = &table.rows()[0];
    let last = &table.rows()[table.num_rows() - 1];
    assert_eq!(first[1], "0.2");
    assert_eq!(last[1], "1.4");
    for col in 2..first.len() {
        let (Ok(hi), Ok(lo)) = (first[col].parse::<f64>(), last[col].parse::<f64>()) else {
            continue; // "-" cells
        };
        assert!(hi > lo, "column {col}: {hi} should exceed {lo}");
    }
}

#[test]
fn tab7_reproduces_centralized_ordering() {
    let table = experiments::tab7::run(&ctx());
    // Wavelet ≈ HHc2, both well above HHc16 — the exact opposite of the
    // local finding, which is the point of Figure 7.
    let get = |label: &str| -> Vec<f64> {
        table.rows().iter().find(|r| r[0] == label).unwrap()[1..]
            .iter()
            .map(|c| c.parse().unwrap())
            .collect()
    };
    let wavelet = get("Wavelet");
    let hh16 = get("HHc16");
    let hh2 = get("HHc2");
    for i in 0..wavelet.len() {
        assert!(wavelet[i] > 1.5 * hh16[i], "wavelet should lose centrally");
        assert!(hh2[i] > 1.5 * hh16[i], "HHc2 should lose centrally");
        let near = (wavelet[i] / hh2[i] - 1.0).abs();
        assert!(
            near < 0.5,
            "wavelet and HHc2 should be close, off by {near}"
        );
    }
}

#[test]
fn fig8_accuracy_is_stable_across_centers() {
    let table = experiments::fig8::run(&ctx());
    for col in [2usize, 3] {
        let vals: Vec<f64> = table
            .rows()
            .iter()
            .map(|r| r[col].parse::<f64>().unwrap())
            .collect();
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        // "the change in distribution does not make any noticeable
        // difference" — allow generous noise at tiny scale.
        assert!(
            max / min.max(1e-9) < 25.0,
            "column {col} varies wildly: {vals:?}"
        );
    }
}

#[test]
fn fig9_quantile_errors_are_flat_and_small() {
    let table = experiments::fig9::run(&ctx());
    for row in table.rows() {
        let qerr: f64 = row[5].parse().unwrap();
        assert!(qerr < 0.15, "quantile error {qerr} in row {row:?}");
    }
}

#[test]
fn full_scale_context_is_wired_to_env() {
    // Not set in tests → laptop scale.
    let ctx = EvalContext::from_env();
    assert!(!ctx.full_scale || std::env::var("LDP_FULL_SCALE").is_ok());
}
