//! End-to-end integration: every mechanism, both protocol paths, against
//! exact ground truth.

use ldp_range_queries::prelude::*;
use ldp_range_queries::ranges::{FlatClient, HaarHrrClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cauchy(domain: usize, n: u64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        n,
        &mut rng,
    )
}

/// Checks an estimate against ground truth on a spread of ranges.
fn assert_close_on_ranges<E: RangeEstimate>(est: &E, ds: &Dataset, tol: f64, label: &str) {
    let d = ds.domain();
    for (a, b) in [
        (0, d - 1),
        (0, d / 2),
        (d / 4, 3 * d / 4),
        (d / 8, d / 8 + d / 16),
        (d - d / 8, d - 1),
    ] {
        let got = est.range(a, b);
        let want = ds.true_range(a, b);
        assert!(
            (got - want).abs() < tol,
            "{label}: range [{a},{b}] estimated {got}, truth {want}"
        );
    }
}

#[test]
fn flat_mechanism_per_user_and_population_paths() {
    let domain = 128;
    let ds = cauchy(domain, 40_000, 1);
    let eps = Epsilon::from_exp(3.0);
    let config = FlatConfig::new(domain, eps).unwrap();

    // Per-user path.
    let client = FlatClient::new(&config).unwrap();
    let mut server = FlatServer::new(&config).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    for (v, &c) in ds.counts().iter().enumerate() {
        for _ in 0..c {
            server.absorb(&client.report(v, &mut rng).unwrap()).unwrap();
        }
    }
    // Fact 1: flat ranges accumulate one VF per item, so the full-domain
    // query has sd ≈ sqrt(D·VF) ≈ 0.1 here — tolerances sized accordingly.
    assert_eq!(server.num_reports(), ds.population());
    assert_close_on_ranges(&server.estimate(), &ds, 0.35, "flat per-user");

    // Population path.
    let mut server2 = FlatServer::new(&config).unwrap();
    server2.absorb_population(ds.counts(), &mut rng).unwrap();
    assert_close_on_ranges(&server2.estimate(), &ds, 0.35, "flat population");
}

#[test]
fn hierarchical_mechanism_full_protocol() {
    let domain = 256;
    let ds = cauchy(domain, 60_000, 3);
    let eps = Epsilon::from_exp(3.0);
    for fanout in [2usize, 4, 16] {
        let config = HhConfig::new(domain, fanout, eps).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(4 + fanout as u64);
        for (v, &c) in ds.counts().iter().enumerate() {
            for _ in 0..c {
                server.absorb(&client.report(v, &mut rng).unwrap()).unwrap();
            }
        }
        let raw = server.estimate();
        let ci = server.estimate_consistent();
        assert_close_on_ranges(&raw, &ds, 0.08, &format!("HH{fanout} raw"));
        assert_close_on_ranges(&ci, &ds, 0.08, &format!("HH{fanout} CI"));
        assert!(ci.consistency_violation() < 1e-9);
    }
}

#[test]
fn haar_mechanism_full_protocol() {
    let domain = 256;
    let ds = cauchy(domain, 60_000, 5);
    let eps = Epsilon::from_exp(3.0);
    let config = HaarConfig::new(domain, eps).unwrap();
    let client = HaarHrrClient::new(config.clone()).unwrap();
    let mut server = HaarHrrServer::new(config).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    for (v, &c) in ds.counts().iter().enumerate() {
        for _ in 0..c {
            server.absorb(&client.report(v, &mut rng).unwrap()).unwrap();
        }
    }
    let est = server.estimate();
    assert_close_on_ranges(&est, &ds, 0.08, "HaarHRR");
    // Total mass is pinned exactly.
    assert!((est.range(0, domain - 1) - 1.0).abs() < 1e-12);
}

#[test]
fn tree_methods_beat_flat_on_long_ranges_at_scale() {
    // Fact 1 vs Theorem 4.3/Eq. 3: on a large domain the flat method's
    // long-range error must exceed the tree methods'.
    let domain = 1 << 12;
    let ds = cauchy(domain, 1 << 20, 7);
    let eps = Epsilon::from_exp(3.0);
    let mut rng = StdRng::seed_from_u64(8);

    let reps = 5;
    let r = domain / 2;
    let probe: Vec<(usize, usize)> = (0..64)
        .map(|i| (i * (domain - r) / 64, i * (domain - r) / 64 + r - 1))
        .collect();

    let mse_of = |est: &dyn RangeEstimate, ds: &Dataset| -> f64 {
        probe
            .iter()
            .map(|&(a, b)| {
                let e = est.range(a, b) - ds.true_range(a, b);
                e * e
            })
            .sum::<f64>()
            / probe.len() as f64
    };

    let mut flat_mse = 0.0;
    let mut hh_mse = 0.0;
    let mut haar_mse = 0.0;
    for _ in 0..reps {
        let fc = FlatConfig::new(domain, eps).unwrap();
        let mut fs = FlatServer::new(&fc).unwrap();
        fs.absorb_population(ds.counts(), &mut rng).unwrap();
        flat_mse += mse_of(&fs.estimate(), &ds);

        let hc = HhConfig::new(domain, 4, eps).unwrap();
        let mut hs = HhServer::new(hc).unwrap();
        hs.absorb_population(ds.counts(), &mut rng).unwrap();
        hh_mse += mse_of(&hs.estimate_consistent(), &ds);

        let cc = HaarConfig::new(domain, eps).unwrap();
        let mut cs = HaarHrrServer::new(cc).unwrap();
        cs.absorb_population(ds.counts(), &mut rng).unwrap();
        haar_mse += mse_of(&cs.estimate().to_frequency_estimate(), &ds);
    }
    assert!(
        flat_mse > 4.0 * hh_mse,
        "flat {flat_mse} should be ≫ consistent HH {hh_mse} on long ranges"
    );
    assert!(
        flat_mse > 4.0 * haar_mse,
        "flat {flat_mse} should be ≫ HaarHRR {haar_mse} on long ranges"
    );
}

#[test]
fn flat_wins_point_queries_small_domain() {
    // The other side of the trade-off (paper §5.1): for r = 1 the flat
    // method is competitive/best, since all users report at leaf level.
    let domain = 256;
    let ds = cauchy(domain, 1 << 18, 9);
    let eps = Epsilon::from_exp(3.0);
    let mut rng = StdRng::seed_from_u64(10);
    let reps = 8;

    let point_mse = |est: &dyn RangeEstimate, ds: &Dataset| -> f64 {
        (0..domain)
            .map(|z| {
                let e = est.range(z, z) - ds.true_range(z, z);
                e * e
            })
            .sum::<f64>()
            / domain as f64
    };

    let mut flat_mse = 0.0;
    let mut hh2_mse = 0.0;
    for _ in 0..reps {
        let fc = FlatConfig::new(domain, eps).unwrap();
        let mut fs = FlatServer::new(&fc).unwrap();
        fs.absorb_population(ds.counts(), &mut rng).unwrap();
        flat_mse += point_mse(&fs.estimate(), &ds);

        let hc = HhConfig::new(domain, 2, eps).unwrap();
        let mut hs = HhServer::new(hc).unwrap();
        hs.absorb_population(ds.counts(), &mut rng).unwrap();
        hh2_mse += point_mse(&hs.estimate(), &ds);
    }
    assert!(
        flat_mse < hh2_mse,
        "flat point MSE {flat_mse} should beat raw HH2 {hh2_mse} (level sampling splits \
         the population over 8 levels)"
    );
}

#[test]
fn population_and_user_paths_agree_statistically() {
    // Same protocol, two simulation fidelities: estimates must agree in
    // expectation. We compare averaged estimates across repetitions.
    let domain = 64;
    let ds = cauchy(domain, 20_000, 11);
    let eps = Epsilon::new(1.1);
    let config = HhConfig::new(domain, 4, eps).unwrap();
    let reps = 30;

    let mut user_mean = vec![0.0; domain];
    let mut pop_mean = vec![0.0; domain];
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..reps {
        let client = HhClient::new(config.clone()).unwrap();
        let mut s1 = HhServer::new(config.clone()).unwrap();
        for (v, &c) in ds.counts().iter().enumerate() {
            for _ in 0..c {
                s1.absorb(&client.report(v, &mut rng).unwrap()).unwrap();
            }
        }
        let e1 = s1.estimate_consistent().to_frequency_estimate();

        let mut s2 = HhServer::new(config.clone()).unwrap();
        s2.absorb_population(ds.counts(), &mut rng).unwrap();
        let e2 = s2.estimate_consistent().to_frequency_estimate();

        for z in 0..domain {
            user_mean[z] += e1.point(z) / f64::from(reps);
            pop_mean[z] += e2.point(z) / f64::from(reps);
        }
    }
    for z in 0..domain {
        assert!(
            (user_mean[z] - pop_mean[z]).abs() < 0.02,
            "item {z}: user-path mean {} vs population-path mean {}",
            user_mean[z],
            pop_mean[z]
        );
    }
}
