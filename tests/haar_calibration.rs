//! Regenerates the paper's *omitted* calibration experiment (§4.6): the
//! choice of HRR for perturbing Haar levels is "consistent with other
//! choices in terms of accuracy" — here checked against the OUE-based
//! alternative on identical populations.

use ldp_range_queries::eval::{mse_exact, prefix_errors};
use ldp_range_queries::prelude::*;
use ldp_range_queries::ranges::HaarOueServer;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn haar_hrr_and_haar_oue_have_comparable_accuracy() {
    let domain = 256;
    let n = 1u64 << 18;
    let eps = Epsilon::from_exp(3.0);
    let mut rng = StdRng::seed_from_u64(211);
    let ds = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        n,
        &mut rng,
    );

    let reps = 8;
    let mut hrr_mse = 0.0;
    let mut oue_mse = 0.0;
    for _ in 0..reps {
        let config = HaarConfig::new(domain, eps).unwrap();
        let mut hrr = HaarHrrServer::new(config.clone()).unwrap();
        hrr.absorb_population(ds.counts(), &mut rng).unwrap();
        let est = hrr.estimate().to_frequency_estimate();
        hrr_mse += mse_exact(&prefix_errors(&est, &ds), QueryWorkload::All) / f64::from(reps);

        let mut oue = HaarOueServer::new(config).unwrap();
        oue.absorb_population(ds.counts(), &mut rng).unwrap();
        let est = oue.estimate().to_frequency_estimate();
        oue_mse += mse_exact(&prefix_errors(&est, &ds), QueryWorkload::All) / f64::from(reps);
    }
    // "HRR is consistent with other choices in terms of accuracy": within
    // a factor ~2 either way at these repetition counts.
    let ratio = hrr_mse / oue_mse;
    assert!(
        (0.5..2.0).contains(&ratio),
        "HaarHRR {hrr_mse:.3e} vs HaarOUE {oue_mse:.3e} (ratio {ratio:.2})"
    );
}

#[test]
fn communication_tradeoff_is_as_documented() {
    // HRR transmits log2(M)+1 bits per level report; OUE transmits 2M
    // bits. The report types make the asymmetry inspectable.
    let eps = Epsilon::new(1.1);
    let config = HaarConfig::new(1 << 10, eps).unwrap();
    let hrr_client = HaarHrrClient::new(config.clone()).unwrap();
    let oue_client = ldp_range_queries::ranges::HaarOueClient::new(config).unwrap();
    let mut rng = StdRng::seed_from_u64(212);
    // Both report at some level; the deepest HRR report indexes ≤ 2^9
    // coefficients (10 bits), while the deepest OUE report carries a
    // 2·2^9-bit vector.
    for _ in 0..50 {
        let r = hrr_client.report(123, &mut rng).unwrap();
        assert!(r.depth() < 10);
        let r = oue_client.report(123, &mut rng).unwrap();
        assert!(r.depth() < 10);
    }
}
