//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;

use ldp_range_queries::oracle::binomial::{sample_multinomial, sample_uniform_multinomial};
use ldp_range_queries::prelude::*;
use ldp_range_queries::transforms::{
    decompose_range, fwht, fwht_inverse, haar_forward, haar_inverse, CompleteTree, FlatTree,
    HaarPyramid,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn fwht_roundtrips_any_vector(
        log in 0u32..8,
        seedvals in proptest::collection::vec(-100.0f64..100.0, 256),
    ) {
        let n = 1usize << log;
        let x: Vec<f64> = seedvals[..n].to_vec();
        let mut y = x.clone();
        fwht(&mut y);
        fwht_inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn haar_roundtrips_any_vector(
        log in 0u32..8,
        seedvals in proptest::collection::vec(-100.0f64..100.0, 256),
    ) {
        let n = 1usize << log;
        let x: Vec<f64> = seedvals[..n].to_vec();
        let y = haar_inverse(&haar_forward(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn haar_pyramid_ranges_match_direct_sums(
        log in 1u32..8,
        seedvals in proptest::collection::vec(0.0f64..10.0, 256),
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let n = 1usize << log;
        let x: Vec<f64> = seedvals[..n].to_vec();
        let p = HaarPyramid::from_leaves(&x);
        let mut a = (a_frac * n as f64) as usize % n;
        let mut b = (b_frac * n as f64) as usize % n;
        if a > b { std::mem::swap(&mut a, &mut b); }
        let truth: f64 = x[a..=b].iter().sum();
        prop_assert!((p.range_sum(a, b) - truth).abs() < 1e-9);
    }

    #[test]
    fn decomposition_partitions_any_range(
        fanout in 2usize..9,
        height in 1u32..5,
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let domain = fanout.pow(height);
        let shape = CompleteTree::new(fanout, domain);
        let mut a = (a_frac * domain as f64) as usize % domain;
        let mut b = (b_frac * domain as f64) as usize % domain;
        if a > b { std::mem::swap(&mut a, &mut b); }
        let nodes = decompose_range(&shape, a, b);
        // Tiles exactly, in order.
        let mut cursor = a;
        for n in &nodes {
            let blk = n.block(&shape);
            prop_assert_eq!(blk.start, cursor);
            cursor = blk.end;
        }
        prop_assert_eq!(cursor, b + 1);
        // Per-level count bound 2(B−1).
        let mut per_depth = std::collections::HashMap::new();
        for n in &nodes {
            *per_depth.entry(n.depth).or_insert(0usize) += 1;
        }
        for (_, c) in per_depth {
            prop_assert!(c <= 2 * (fanout - 1));
        }
    }

    #[test]
    fn consistency_projection_invariants(
        fanout in 2usize..6,
        height in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let shape = CompleteTree::with_height(fanout, height);
        // Random-ish per-level values from a seeded RNG.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree: FlatTree<f64> = FlatTree::new(shape);
        *tree.get_mut(0, 0) = 1.0;
        for d in 1..=height {
            let n = shape.nodes_at_depth(d);
            for i in 0..n {
                *tree.get_mut(d, i) = 1.0 / n as f64 + rng.random_range(-0.05..0.05);
            }
        }
        ldp_range_queries::ranges::hh::consistency::enforce_consistency(&mut tree);
        // Invariant 1: parent = sum of children, everywhere.
        for d in 0..height {
            for i in 0..shape.nodes_at_depth(d) {
                let child_sum: f64 = shape.children(d, i).map(|c| *tree.get(d + 1, c)).sum();
                prop_assert!((tree.get(d, i) - child_sum).abs() < 1e-9);
            }
        }
        // Invariant 2: every level totals exactly the root mass of 1.
        for d in 0..=height {
            let s: f64 = tree.level(d).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn multinomial_conserves_trials(
        n in 0u64..100_000,
        k in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = sample_uniform_multinomial(&mut rng, n, k);
        prop_assert_eq!(counts.len(), k);
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
    }

    #[test]
    fn weighted_multinomial_conserves_trials(
        n in 0u64..50_000,
        weights in proptest::collection::vec(0.01f64..10.0, 1..16),
        seed in 0u64..1_000,
    ) {
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = sample_multinomial(&mut rng, n, &probs);
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
    }

    #[test]
    fn quantile_search_matches_linear_scan(
        freqs in proptest::collection::vec(0.0f64..1.0, 2..128),
        phi in 0.0f64..=1.0,
    ) {
        let total: f64 = freqs.iter().sum();
        prop_assume!(total > 0.0);
        let norm: Vec<f64> = freqs.iter().map(|f| f / total).collect();
        let est = ldp_range_queries::ranges::FrequencyEstimate::new(norm);
        let fast = quantile(&est, phi);
        let scan = (0..est.domain())
            .find(|&j| est.prefix(j) >= phi)
            .unwrap_or(est.domain() - 1);
        prop_assert_eq!(fast, scan);
    }

    #[test]
    fn dataset_range_answers_are_consistent(
        counts in proptest::collection::vec(0u64..1_000, 2..64),
    ) {
        let ds = Dataset::from_counts(counts.clone());
        let d = counts.len();
        // Ranges built from prefixes agree with direct summation.
        let total: u64 = counts.iter().sum();
        prop_assume!(total > 0);
        for (a, b) in [(0, d - 1), (0, d / 2), (d / 3, 2 * d / 3)] {
            let direct: u64 = counts[a..=b].iter().sum();
            let frac = direct as f64 / total as f64;
            prop_assert!((ds.true_range(a, b) - frac).abs() < 1e-12);
        }
        // CDF is monotone and ends at 1.
        let cdf = ds.cdf();
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!((cdf[d - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn haar_mechanism_estimate_is_self_consistent(
        seed in 0u64..200,
        log in 2u32..7,
    ) {
        // For ANY noise realization, the Haar estimate must agree with its
        // own collapsed frequencies on every dyadic block — consistency by
        // design (§4.6).
        let domain = 1usize << log;
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::from_counts(vec![50u64; domain]);
        let config = HaarConfig::new(domain, Epsilon::new(0.5)).unwrap();
        let mut server = HaarHrrServer::new(config).unwrap();
        server.absorb_population(ds.counts(), &mut rng).unwrap();
        let est = server.estimate();
        let flat = est.to_frequency_estimate();
        for d in 0..=log {
            let block = domain >> d;
            for t in 0..(1usize << d) {
                let (a, b) = (t * block, (t + 1) * block - 1);
                prop_assert!((est.range(a, b) - flat.range(a, b)).abs() < 1e-9);
            }
        }
    }
}
