//! Integration: the full quantile pipeline (Definition 4.7 / Figure 9)
//! across mechanisms and population shapes.

use ldp_range_queries::eval::{quantile_errors, run_mechanism};
use ldp_range_queries::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(p: f64, domain: usize, n: u64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::centered_at(p)),
        domain,
        n,
        &mut rng,
    )
}

fn mechanisms() -> Vec<(&'static str, RangeMechanism)> {
    vec![
        (
            "HHc2",
            RangeMechanism::Hierarchical {
                fanout: 2,
                oracle: FrequencyOracle::Oue,
                consistent: true,
            },
        ),
        ("HaarHRR", RangeMechanism::HaarHrr),
    ]
}

#[test]
fn deciles_land_close_in_quantile_space() {
    let domain = 1 << 10;
    let ds = dataset(0.5, domain, 1 << 20, 21);
    let eps = Epsilon::from_exp(3.0);
    let mut rng = StdRng::seed_from_u64(22);
    for (label, mech) in mechanisms() {
        let est = run_mechanism(mech, eps, &ds, &mut rng).unwrap();
        for i in 1..=9u32 {
            let phi = f64::from(i) / 10.0;
            let found = quantile(&est, phi);
            let errs = quantile_errors(&ds, phi, found);
            // The paper's headline: quantile error is tiny even when value
            // error is not (e.g. ~0.0004 around the median at full scale;
            // we allow more at our reduced N).
            assert!(
                errs.quantile_error < 0.02,
                "{label} phi={phi}: quantile error {}",
                errs.quantile_error
            );
        }
    }
}

#[test]
fn value_error_concentrates_where_data_is_sparse() {
    // Left-skewed data (P = 0.1): the right tail is sparse, so the upper
    // deciles' value error may grow while quantile error stays flat —
    // "any spikes in the value error are mostly a function of sparse
    // data" (§5.5).
    let domain = 1 << 10;
    let ds = dataset(0.1, domain, 1 << 20, 23);
    let eps = Epsilon::from_exp(3.0);
    let mut rng = StdRng::seed_from_u64(24);
    let est = run_mechanism(RangeMechanism::HaarHrr, eps, &ds, &mut rng).unwrap();
    let mut max_qerr = 0.0f64;
    for i in 1..=9u32 {
        let phi = f64::from(i) / 10.0;
        let errs = quantile_errors(&ds, phi, quantile(&est, phi));
        max_qerr = max_qerr.max(errs.quantile_error);
    }
    assert!(max_qerr < 0.03, "max quantile error {max_qerr}");
}

#[test]
fn extreme_quantiles_are_clamped_to_domain() {
    let ds = dataset(0.5, 256, 1 << 16, 25);
    let eps = Epsilon::new(1.1);
    let mut rng = StdRng::seed_from_u64(26);
    let est = run_mechanism(RangeMechanism::HaarHrr, eps, &ds, &mut rng).unwrap();
    let lo = quantile(&est, 0.0);
    let hi = quantile(&est, 1.0);
    assert!(lo < 256 && hi < 256);
    assert!(lo <= hi);
}

#[test]
fn binary_search_uses_logarithmically_many_prefix_queries() {
    // Structural check: quantile() on a domain of 2^k needs at most k
    // prefix evaluations. We verify via a counting wrapper.
    struct Counting<'a, E> {
        inner: &'a E,
        calls: std::cell::Cell<u32>,
    }
    impl<E: RangeEstimate> RangeEstimate for Counting<'_, E> {
        fn domain(&self) -> usize {
            self.inner.domain()
        }
        fn range(&self, a: usize, b: usize) -> f64 {
            self.calls.set(self.calls.get() + 1);
            self.inner.range(a, b)
        }
    }
    let ds = dataset(0.4, 1 << 12, 1 << 16, 27);
    let est = ldp_range_queries::ranges::FrequencyEstimate::new(ds.true_frequencies());
    let counting = Counting {
        inner: &est,
        calls: std::cell::Cell::new(0),
    };
    let _ = quantile(&counting, 0.5);
    assert!(
        counting.calls.get() <= 12,
        "used {} prefix queries",
        counting.calls.get()
    );
}
