//! Integration: sharded (distributed) aggregation and estimate
//! post-processing.

use ldp_range_queries::prelude::*;
use ldp_range_queries::ranges::{isotonic_cdf, project_nonnegative_simplex, FrequencyEstimate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cauchy(domain: usize, n: u64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        n,
        &mut rng,
    )
}

/// Splits a histogram into `k` disjoint shards (round-robin by count).
fn shard(counts: &[u64], k: u64) -> Vec<Vec<u64>> {
    (0..k)
        .map(|s| {
            counts
                .iter()
                .map(|&c| c / k + u64::from(c % k > s))
                .collect()
        })
        .collect()
}

#[test]
fn sharded_hh_aggregation_equals_single_server_distribution() {
    let domain = 256;
    let ds = cauchy(domain, 1 << 18, 41);
    let eps = Epsilon::from_exp(3.0);
    let config = HhConfig::new(domain, 4, eps).unwrap();
    let mut rng = StdRng::seed_from_u64(42);

    // Four shards absorb disjoint cohorts, then merge.
    let shards = shard(ds.counts(), 4);
    let mut merged = HhServer::new(config.clone()).unwrap();
    for shard_counts in &shards {
        let mut s = HhServer::new(config.clone()).unwrap();
        s.absorb_population(shard_counts, &mut rng).unwrap();
        merged.merge(&s).unwrap();
    }
    assert_eq!(merged.num_reports(), ds.population());

    let est = merged.estimate_consistent();
    let truth = ds.true_range(64, 191);
    assert!(
        (est.range(64, 191) - truth).abs() < 0.05,
        "merged estimate {} vs truth {truth}",
        est.range(64, 191)
    );
}

#[test]
fn sharded_haar_and_flat_aggregation() {
    let domain = 128;
    let ds = cauchy(domain, 1 << 17, 43);
    let eps = Epsilon::new(1.1);
    let mut rng = StdRng::seed_from_u64(44);
    let shards = shard(ds.counts(), 3);

    let hc = HaarConfig::new(domain, eps).unwrap();
    let mut haar = HaarHrrServer::new(hc.clone()).unwrap();
    let fc = FlatConfig::new(domain, eps).unwrap();
    let mut flat = FlatServer::new(&fc).unwrap();
    for shard_counts in &shards {
        let mut hs = HaarHrrServer::new(hc.clone()).unwrap();
        hs.absorb_population(shard_counts, &mut rng).unwrap();
        haar.merge(&hs).unwrap();
        let mut fs = FlatServer::new(&fc).unwrap();
        fs.absorb_population(shard_counts, &mut rng).unwrap();
        flat.merge(&fs).unwrap();
    }
    assert_eq!(haar.num_reports(), ds.population());
    assert_eq!(flat.num_reports(), ds.population());
    let truth = ds.true_range(32, 95);
    assert!((haar.estimate().range(32, 95) - truth).abs() < 0.05);
    assert!((flat.estimate().range(32, 95) - truth).abs() < 0.15);
}

#[test]
fn merge_rejects_mismatched_shapes() {
    let eps = Epsilon::new(1.0);
    let mut a = HhServer::new(HhConfig::new(256, 4, eps).unwrap()).unwrap();
    let b = HhServer::new(HhConfig::new(256, 2, eps).unwrap()).unwrap();
    assert!(a.merge(&b).is_err());
    let mut ha = HaarHrrServer::new(HaarConfig::new(64, eps).unwrap()).unwrap();
    let hb = HaarHrrServer::new(HaarConfig::new(128, eps).unwrap()).unwrap();
    assert!(ha.merge(&hb).is_err());
}

#[test]
fn simplex_projection_never_hurts_range_accuracy_much() {
    // Projection onto the feasible set cannot increase L2 distance to any
    // feasible point (the truth is feasible) — check the induced effect on
    // ranges over repeated runs.
    let domain = 128;
    let ds = cauchy(domain, 1 << 15, 45);
    let eps = Epsilon::new(0.5); // noisy regime: negatives are common
    let mut rng = StdRng::seed_from_u64(46);
    let mut raw_sq = 0.0;
    let mut proj_sq = 0.0;
    let reps = 10;
    for _ in 0..reps {
        let config = FlatConfig::new(domain, eps).unwrap();
        let mut server = FlatServer::new(&config).unwrap();
        server.absorb_population(ds.counts(), &mut rng).unwrap();
        let est = server.estimate();
        assert!(
            est.frequencies().iter().any(|&f| f < 0.0),
            "noisy flat estimates should have negative cells at eps=0.5"
        );
        let projected = FrequencyEstimate::new(project_nonnegative_simplex(est.frequencies(), 1.0));
        for (a, b) in [(0, 20), (30, 90), (100, 127)] {
            let t = ds.true_range(a, b);
            raw_sq += (est.range(a, b) - t).powi(2);
            proj_sq += (projected.range(a, b) - t).powi(2);
        }
    }
    assert!(
        proj_sq < raw_sq * 1.5,
        "projection should not degrade range accuracy: raw {raw_sq:.3e} vs proj {proj_sq:.3e}"
    );
}

#[test]
fn isotonic_cdf_improves_quantile_stability() {
    let domain = 256;
    let ds = cauchy(domain, 1 << 15, 47);
    let eps = Epsilon::new(0.4);
    let mut rng = StdRng::seed_from_u64(48);
    let mut raw_err = 0.0;
    let mut iso_err = 0.0;
    let reps = 8;
    for _ in 0..reps {
        let config = HaarConfig::new(domain, eps).unwrap();
        let mut server = HaarHrrServer::new(config).unwrap();
        server.absorb_population(ds.counts(), &mut rng).unwrap();
        let est = server.estimate().to_frequency_estimate();
        let iso = isotonic_cdf(&est, 1.0);
        for i in 1..=9u32 {
            let phi = f64::from(i) / 10.0;
            let truth = ds.true_quantile(phi) as f64;
            raw_err += (quantile(&est, phi) as f64 - truth).abs();
            iso_err += (quantile(&iso, phi) as f64 - truth).abs();
        }
    }
    // Isotonic cleanup must not make quantiles worse in aggregate (it
    // usually helps in this noisy regime).
    assert!(
        iso_err <= raw_err * 1.2,
        "isotonic CDF should not hurt quantiles: raw {raw_err} vs iso {iso_err}"
    );
    // And the cleaned estimate is a valid distribution.
    let config = HaarConfig::new(domain, eps).unwrap();
    let mut server = HaarHrrServer::new(config).unwrap();
    server.absorb_population(ds.counts(), &mut rng).unwrap();
    let iso = isotonic_cdf(&server.estimate().to_frequency_estimate(), 1.0);
    assert!(iso.frequencies().iter().all(|&f| f >= -1e-12));
    let cdf = iso.cdf();
    assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12));
}
