//! Empirical validation of the paper's accuracy theory: measured errors
//! must track Fact 1, Theorem 4.3 / Eq. (1), Lemma 4.6, Eq. (2) and
//! Eq. (3) in shape and stay below the stated worst-case bounds.

use ldp_range_queries::oracle::frequency_oracle_variance;
use ldp_range_queries::prelude::*;
use ldp_range_queries::ranges::theory;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DOMAIN: usize = 256;
const N: u64 = 1 << 18;

fn uniform_dataset() -> Dataset {
    Dataset::from_counts(vec![N / DOMAIN as u64; DOMAIN])
}

/// Empirical MSE over all length-r ranges, averaged over repetitions.
fn empirical_fixed_length_mse(
    mech: RangeMechanism,
    eps: Epsilon,
    ds: &Dataset,
    r: usize,
    reps: u32,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..reps {
        let est = ldp_range_queries::eval::run_mechanism(mech, eps, ds, &mut rng).unwrap();
        let mut sq = 0.0;
        for a in 0..=DOMAIN - r {
            let e = est.range(a, a + r - 1) - ds.true_range(a, a + r - 1);
            sq += e * e;
        }
        total += sq / (DOMAIN - r + 1) as f64;
    }
    total / f64::from(reps)
}

#[test]
fn fact1_flat_variance_grows_linearly_in_r() {
    let ds = uniform_dataset();
    let eps = Epsilon::new(1.0);
    let vf = frequency_oracle_variance(eps, N);
    let mech = RangeMechanism::Flat(FrequencyOracle::Oue);
    for r in [4usize, 16, 64] {
        let measured = empirical_fixed_length_mse(mech, eps, &ds, r, 10, 100 + r as u64);
        let predicted = theory::flat_range_variance(vf, r);
        let ratio = measured / predicted;
        assert!(
            (0.6..1.5).contains(&ratio),
            "r={r}: measured {measured:.3e} vs Fact 1 prediction {predicted:.3e} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn hh_error_stays_below_theorem_43_bound() {
    let ds = uniform_dataset();
    let eps = Epsilon::new(1.0);
    let vf = frequency_oracle_variance(eps, N);
    for fanout in [2usize, 4] {
        let mech = RangeMechanism::Hierarchical {
            fanout,
            oracle: FrequencyOracle::Oue,
            consistent: false,
        };
        for r in [8usize, 64, 128] {
            let measured = empirical_fixed_length_mse(mech, eps, &ds, r, 6, 200 + r as u64);
            let bound = theory::hh_range_variance_bound(vf, fanout, DOMAIN, r);
            assert!(
                measured < bound,
                "B={fanout}, r={r}: measured {measured:.3e} exceeds Eq.(1) bound {bound:.3e}"
            );
        }
    }
}

#[test]
fn lemma_46_consistency_reduces_variance() {
    let ds = uniform_dataset();
    let eps = Epsilon::new(1.0);
    for fanout in [4usize, 16] {
        let raw = RangeMechanism::Hierarchical {
            fanout,
            oracle: FrequencyOracle::Oue,
            consistent: false,
        };
        let ci = RangeMechanism::Hierarchical {
            fanout,
            oracle: FrequencyOracle::Oue,
            consistent: true,
        };
        let r = 96;
        let m_raw = empirical_fixed_length_mse(raw, eps, &ds, r, 10, 300 + fanout as u64);
        let m_ci = empirical_fixed_length_mse(ci, eps, &ds, r, 10, 300 + fanout as u64);
        // "the CI step reliably provides a significant improvement in
        // accuracy … and never increases the error" (§5.1); allow noise
        // slack on the never-increases side.
        assert!(
            m_ci < m_raw * 1.05,
            "B={fanout}: CI error {m_ci:.3e} should not exceed raw {m_raw:.3e}"
        );
    }
}

#[test]
fn eq3_haar_error_is_flat_in_r_and_below_bound() {
    let ds = uniform_dataset();
    let eps = Epsilon::new(1.0);
    let vf = frequency_oracle_variance(eps, N);
    let bound = theory::haar_range_variance_bound(vf, DOMAIN);
    let mut mses = Vec::new();
    for r in [8usize, 32, 128, 224] {
        let m =
            empirical_fixed_length_mse(RangeMechanism::HaarHrr, eps, &ds, r, 10, 400 + r as u64);
        assert!(
            m < bound,
            "r={r}: measured {m:.3e} exceeds Eq.(3) bound {bound:.3e}"
        );
        mses.push(m);
    }
    // Flat in r: max/min within a small factor (noise + fringe effects).
    let max = mses.iter().cloned().fold(0.0, f64::max);
    let min = mses.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 6.0, "Haar MSEs vary too much with r: {mses:?}");
}

#[test]
fn prefix_queries_are_easier_than_ranges() {
    // §4.7: one fringe instead of two → roughly half the variance.
    let ds = uniform_dataset();
    let eps = Epsilon::new(1.0);
    let mut rng = StdRng::seed_from_u64(500);
    let reps = 12;
    let mut range_mse = 0.0;
    let mut prefix_mse = 0.0;
    for _ in 0..reps {
        let est =
            ldp_range_queries::eval::run_mechanism(RangeMechanism::HaarHrr, eps, &ds, &mut rng)
                .unwrap();
        // Compare same-length queries: prefixes [0, r-1] vs interior
        // ranges of the same length.
        let r = 100;
        let e_prefix = est.range(0, r - 1) - ds.true_range(0, r - 1);
        prefix_mse += e_prefix * e_prefix;
        let e_range = est.range(78, 78 + r - 1) - ds.true_range(78, 78 + r - 1);
        range_mse += e_range * e_range;
    }
    // Direction check with generous slack (only 12 samples each).
    assert!(
        prefix_mse < range_mse * 2.5,
        "prefix MSE {prefix_mse:.3e} should not be much above interior-range MSE {range_mse:.3e}"
    );
}

#[test]
fn optimal_fanout_constants() {
    // §4.4 / §4.5: optimizing the variance expressions gives B ≈ 4.9
    // without CI (pick 4 or 5) and B ≈ 9.2 with CI (pick 8).
    let plain = theory::optimal_fanout(false);
    assert!((4.0..6.0).contains(&plain));
    let ci = theory::optimal_fanout(true);
    assert!((8.0..10.0).contains(&ci));
    assert!(ci > plain, "consistency should push the optimum higher");
}
