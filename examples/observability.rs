//! The telemetry layer on one page: a durable windowed `LdpServer` runs
//! with one shared `MetricsRegistry` spanning every tier — shard absorb,
//! snapshot refresh, epoch sealing, socket sessions, and the write-ahead
//! log — plus a `TraceRing` of per-message events. A client watches the
//! server live over the wire: the version-gated METRICS message, the
//! verbose STATUS with its embedded metrics section, and exact
//! before/after deltas computed with the registry's subtract discipline.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use ldp_range_queries::prelude::*;
use ldp_range_queries::service::net::{Hello, NetConfig};
use ldp_range_queries::service::obs::instruments::names;
use ldp_range_queries::service::storage::{
    scratch_dir, DurableConfig, DurableService, FsyncPolicy,
};
use ldp_range_queries::service::{EncodedStream, LdpClient, LdpServer, MetricsRegistry, TraceRing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let domain = 256usize;
    let epochs = 3usize;
    let users_per_epoch = 5_000usize;

    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    // One registry for the whole stack: handed to the storage tier, which
    // shares it with the wrapped service, window, and shard tiers; the
    // socket front end adopts it automatically at bind. The trace ring
    // records one structured event per session message.
    let registry = Arc::new(MetricsRegistry::new());
    let trace = Arc::new(TraceRing::enabled_with(256));
    let dir = scratch_dir("observability-example").expect("scratch dir");
    let (durable, recovery) = DurableService::open_windowed(
        &dir,
        &prototype,
        2,
        DurableConfig {
            num_shards: 4,
            fsync: FsyncPolicy::EveryBytes(1 << 20),
            registry: Some(Arc::clone(&registry)),
            ..DurableConfig::default()
        },
    )
    .expect("open durable store");
    println!(
        "# observability: durable windowed store open (checkpoint {:?}, {} records replayed)",
        recovery.checkpoint_id, recovery.records_replayed
    );
    let server = LdpServer::bind_durable(
        "127.0.0.1:0",
        Arc::new(durable),
        NetConfig {
            trace: Some(Arc::clone(&trace)),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("# LdpServer on {addr}, registry shared across all five tiers\n");

    let mut session = LdpClient::connect(
        addr,
        Hello::windowed::<ldp_range_queries::ranges::HhReport>(),
    )
    .expect("connect");
    let mut rng = StdRng::seed_from_u64(42);

    // Ingest a few epochs, watching the registry live between them. The
    // subtract discipline gives *exact* per-epoch deltas: snapshots are
    // integer statistics, so (after − before) loses nothing.
    let mut before = session.metrics().expect("METRICS over the wire");
    println!(
        "{:>6}  {:>8}  {:>12}  {:>14}  {:>12}",
        "epoch", "frames", "wal records", "absorb p99 ns", "report ns"
    );
    for epoch in 0..epochs {
        let mut stream = EncodedStream::new();
        for _ in 0..users_per_epoch {
            let value = rng.random_range(0..domain);
            stream.push_epoch(
                &client.report(value, &mut rng).expect("report"),
                epoch as u64,
            );
        }
        let acked = session.send_stream(&stream, 512).expect("clean stream");
        assert_eq!(acked as usize, users_per_epoch);
        session.seal_epoch().expect("seal over the wire");

        let after = session.metrics().expect("METRICS over the wire");
        let mut delta = after.clone();
        delta
            .subtract(&before)
            .expect("later snapshot minus earlier is exact");
        println!(
            "{epoch:>6}  {:>8}  {:>12}  {:>14}  {:>12.0}",
            delta.counter(names::NET_FRAMES_ABSORBED).unwrap_or(0),
            delta.counter(names::WAL_RECORDS).unwrap_or(0),
            delta
                .histo(names::SHARD_ABSORB_NS)
                .map_or(0, |h| h.quantile_bound(0.99)),
            delta.histo(names::NET_REPORT_NS).map_or(0.0, |h| h.mean()),
        );
        before = after;
    }

    // A query, then the three exposition surfaces.
    let median = session.quantile(0.5).expect("quantile");
    println!("\n# median after {epochs} epochs: {}", median.index());

    // 1. Legacy STATUS: byte-identical to the pre-metrics wire format.
    let status = session.status().expect("status");
    assert!(status.metrics.is_none(), "plain STATUS stays legacy");
    // 2. Verbose STATUS: the same counters plus the full metrics section.
    let verbose = session.status_full().expect("verbose status");
    let embedded = verbose.metrics.expect("verbose STATUS embeds metrics");
    assert_eq!(
        embedded.counter(names::NET_FRAMES_ABSORBED),
        Some((epochs * users_per_epoch) as u64)
    );
    // 3. The dedicated METRICS message (works even before HELLO).
    let live = session.metrics().expect("metrics");
    println!(
        "# exposition: STATUS legacy ({} frames), STATUS verbose (+{} metrics), METRICS ({} metrics)",
        status.frames_absorbed,
        embedded.len(),
        live.len()
    );
    // 4. The ops-plane probes: the derived component-health verdict and
    //    the background sampler's time-series ring (both pre-HELLO too).
    let health = session.health().expect("health");
    println!(
        "# health: {} ({} components judged)",
        health.verdict().as_str(),
        health.components.len()
    );
    let range = session.metrics_range(4).expect("metrics range");
    println!(
        "# metrics range: {} samples at {} ms intervals, {} exact deltas",
        range.samples.len(),
        range.interval_ms,
        range.deltas().len()
    );

    session.bye().expect("clean close");
    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, (epochs * users_per_epoch) as u64);

    // The operator views: plain text and JSON, straight off the registry.
    println!("\n# registry.render() ——————————————————————————————");
    print!("{}", registry.render());
    let json = registry.render_json();
    println!("# registry.render_json(): {} bytes of JSON", json.len());

    // The trace ring: the last few structured session events.
    let events = trace.events();
    println!(
        "\n# trace ring: {} events recorded, tail:",
        trace.recorded()
    );
    for (ticket, event) in events.iter().rev().take(5).rev() {
        println!(
            "#   [{ticket:>4}] span {} session {} {:?} msg 0x{:02x} {:?} {} ns",
            event.span, event.session, event.stage, event.msg_type, event.outcome, event.ns
        );
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
