//! Building a classifier on top of LDP range queries (paper §6, "Advanced
//! data analysis").
//!
//! Run with: `cargo run --release --example naive_bayes`
//!
//! "Consider building a Naive Bayes classifier for a public class based on
//! private numerical attributes. If we use our methods to allow range
//! queries to be evaluated on each attribute for each class, we can then
//! build models for the prediction problem."
//!
//! Here: a public binary label (say, clicked / did not click) and two
//! private numeric attributes (age bucket, session length). Users with
//! each label report each attribute through its own HaarHRR collection.
//! The aggregator estimates, per class, the probability mass in a small
//! window around a query point, multiplies the per-attribute likelihoods
//! with the class prior (Naive Bayes), and predicts. We measure agreement
//! with the exact (non-private) Naive Bayes classifier.

use ldp_range_queries::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DOMAIN: usize = 256;
const WINDOW: usize = 8; // half-width of the likelihood window

/// Per-class, per-attribute population model (ground truth).
struct ClassModel {
    prior: f64,
    age: DistributionKind,
    session: DistributionKind,
}

fn models() -> [ClassModel; 2] {
    [
        // Non-clickers: older-skewed ages, short sessions.
        ClassModel {
            prior: 0.7,
            age: DistributionKind::Gaussian {
                center_fraction: 0.65,
                sd_fraction: 0.15,
            },
            session: DistributionKind::Gaussian {
                center_fraction: 0.2,
                sd_fraction: 0.1,
            },
        },
        // Clickers: younger, longer sessions.
        ClassModel {
            prior: 0.3,
            age: DistributionKind::Gaussian {
                center_fraction: 0.35,
                sd_fraction: 0.12,
            },
            session: DistributionKind::Gaussian {
                center_fraction: 0.55,
                sd_fraction: 0.15,
            },
        },
    ]
}

/// Collects one attribute of one class under LDP and returns the
/// estimated frequencies.
fn collect(
    kind: DistributionKind,
    users: u64,
    eps: Epsilon,
    rng: &mut StdRng,
) -> (Dataset, ldp_range_queries::ranges::FrequencyEstimate) {
    let ds = Dataset::sample(kind, DOMAIN, users, rng);
    let config = HaarConfig::new(DOMAIN, eps).expect("config");
    let mut server = HaarHrrServer::new(config).expect("server");
    server.absorb_population(ds.counts(), rng).expect("absorb");
    let est = server.estimate().to_frequency_estimate();
    (ds, est)
}

fn window(z: usize) -> (usize, usize) {
    (z.saturating_sub(WINDOW), (z + WINDOW).min(DOMAIN - 1))
}

fn likelihood<E: RangeEstimate>(est: &E, z: usize) -> f64 {
    let (a, b) = window(z);
    // Clamp away negative noise; floor keeps the product well-defined.
    est.range(a, b).max(1e-6)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1_337);
    let eps = Epsilon::new(1.1);
    let population = 2_000_000u64;

    let ms = models();
    println!(
        "two classes (priors {:.1}/{:.1}), two private attributes, {population} users/class-attribute, eps = {}\n",
        ms[0].prior,
        ms[1].prior,
        eps.value()
    );

    // LDP collection: one frequency estimate per (class, attribute).
    let mut exact = Vec::new();
    let mut private = Vec::new();
    for m in &ms {
        let (age_ds, age_est) = collect(m.age, population, eps, &mut rng);
        let (sess_ds, sess_est) = collect(m.session, population, eps, &mut rng);
        exact.push((age_ds, sess_ds));
        private.push((age_est, sess_est));
    }

    // Classify a grid of query points with both classifiers.
    let mut agree = 0u32;
    let mut total = 0u32;
    let mut private_correct_vs_bayes = 0u32;
    for age in (4..DOMAIN).step_by(12) {
        for sess in (4..DOMAIN).step_by(12) {
            let score = |use_private: bool, c: usize| -> f64 {
                let prior = ms[c].prior;
                if use_private {
                    prior * likelihood(&private[c].0, age) * likelihood(&private[c].1, sess)
                } else {
                    let (a0, b0) = window(age);
                    let (a1, b1) = window(sess);
                    prior
                        * exact[c].0.true_range(a0, b0).max(1e-6)
                        * exact[c].1.true_range(a1, b1).max(1e-6)
                }
            };
            let exact_pred = usize::from(score(false, 1) > score(false, 0));
            let priv_pred = usize::from(score(true, 1) > score(true, 0));
            total += 1;
            if exact_pred == priv_pred {
                agree += 1;
            }
            // Bayes-optimal truth from the generative model.
            let bayes = {
                let pmf = |k: DistributionKind| k.pmf(DOMAIN);
                let dens = |c: usize| {
                    let (a0, b0) = window(age);
                    let (a1, b1) = window(sess);
                    let pa: f64 = pmf(ms[c].age)[a0..=b0].iter().sum();
                    let ps: f64 = pmf(ms[c].session)[a1..=b1].iter().sum();
                    ms[c].prior * pa * ps
                };
                usize::from(dens(1) > dens(0))
            };
            if priv_pred == bayes {
                private_correct_vs_bayes += 1;
            }
        }
    }

    println!(
        "agreement with exact (non-private) Naive Bayes: {agree}/{total} = {:.1}%",
        100.0 * f64::from(agree) / f64::from(total)
    );
    println!(
        "agreement with Bayes-optimal rule:              {private_correct_vs_bayes}/{total} = {:.1}%",
        100.0 * f64::from(private_correct_vs_bayes) / f64::from(total)
    );
    println!(
        "\n(every likelihood was answered by an LDP range query; no raw attribute left a device)"
    );
}
