//! The ops-plane smoke: a durable windowed `LdpServer` with the HTTP
//! scrape endpoint enabled scrapes *itself* over plain std sockets — no
//! curl, no fixed port — asserting that `GET /metrics` parses as
//! Prometheus text, `GET /health` answers 200 with a `Healthy` verdict,
//! and `GET /metrics/range` serves the background sampler's time-series
//! ring, whose JSON dump is written to `OPS_ring_dump.json` (the CI
//! artifact).
//!
//! ```text
//! cargo run --release --example ops_plane
//! ```

use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ldp_range_queries::prelude::*;
use ldp_range_queries::service::net::{Hello, NetConfig};
use ldp_range_queries::service::storage::{
    scratch_dir, DurableConfig, DurableService, FsyncPolicy,
};
use ldp_range_queries::service::{EncodedStream, HealthState, LdpClient, LdpServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One HTTP GET over a fresh connection; the ops endpoint closes after
/// every response, so read-to-EOF frames the reply.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ops endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A scraper-strength parse of the Prometheus text format: every line
/// is a `# TYPE` comment or a `name value` sample with a finite value,
/// and every sample's family was declared by a preceding `# TYPE`.
fn assert_prometheus_parses(body: &str) -> usize {
    let mut families: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown kind: {line}"
            );
            families.push(name.to_string());
        } else {
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.parse().expect("numeric sample value");
            assert!(value.is_finite(), "non-finite sample: {line}");
            let base = name_part.split('{').next().unwrap();
            assert!(
                families.iter().any(|f| {
                    base == f
                        || ["_bucket", "_sum", "_count"]
                            .iter()
                            .any(|s| base.strip_suffix(s) == Some(f.as_str()))
                }),
                "sample without TYPE: {line}"
            );
            samples += 1;
        }
    }
    assert!(samples > 0, "empty exposition");
    samples
}

fn main() {
    let domain = 256usize;
    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    let dir = scratch_dir("ops-plane-example").expect("scratch dir");
    let (durable, _) = DurableService::open_windowed(
        &dir,
        &prototype,
        2,
        DurableConfig {
            num_shards: 2,
            fsync: FsyncPolicy::EveryBytes(1 << 20),
            ..DurableConfig::default()
        },
    )
    .expect("open durable store");
    let server = LdpServer::bind_durable(
        "127.0.0.1:0",
        Arc::new(durable),
        NetConfig {
            ops_addr: Some("127.0.0.1:0".to_string()),
            sample_interval: Duration::from_millis(50),
            ring_capacity: 64,
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let ops = server.ops_local_addr().expect("ops endpoint bound");
    println!(
        "# ops_plane: sessions on {}, scrape endpoint on {ops}",
        server.local_addr()
    );

    // Real traffic so the scrape carries every tier's instruments.
    let mut session = LdpClient::connect(
        server.local_addr(),
        Hello::windowed::<ldp_range_queries::ranges::HhReport>(),
    )
    .expect("connect");
    let mut rng = StdRng::seed_from_u64(7);
    for epoch in 0..2u64 {
        let mut stream = EncodedStream::new();
        for _ in 0..2_000 {
            let value = rng.random_range(0..domain);
            stream.push_epoch(&client.report(value, &mut rng).expect("report"), epoch);
        }
        assert_eq!(session.send_stream(&stream, 256).expect("stream"), 2_000);
        session.seal_epoch().expect("seal");
    }

    // Let the 50ms sampler take a handful of samples.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.timeseries().len() < 4 {
        assert!(Instant::now() < deadline, "sampler never sampled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // GET /metrics: valid Prometheus text with the ingested frames.
    let (status, body) = http_get(ops, "/metrics");
    assert_eq!(status, 200, "/metrics status");
    let samples = assert_prometheus_parses(&body);
    assert!(
        body.contains("net_frames_absorbed 4000"),
        "scrape missed the traffic"
    );
    println!("# GET /metrics: 200, {samples} samples, Prometheus text parses");

    // GET /health: 200 and a Healthy verdict on this idle, intact node.
    let (status, body) = http_get(ops, "/health");
    assert_eq!(status, 200, "/health status: {body}");
    assert!(
        body.contains("\"verdict\": \"Healthy\""),
        "unexpected verdict: {body}"
    );
    println!("# GET /health: 200, verdict Healthy");

    // The wire verdict agrees with the scraped one.
    let report = session.health().expect("HEALTH over the wire");
    assert_eq!(report.verdict(), HealthState::Healthy);

    // GET /metrics/range: the ring dump — also the CI bench artifact.
    let (status, dump) = http_get(ops, "/metrics/range");
    assert_eq!(status, 200, "/metrics/range status");
    assert!(dump.contains("\"samples\""), "no samples in range dump");
    std::fs::write("OPS_ring_dump.json", &dump).expect("write ring dump");
    println!(
        "# GET /metrics/range: 200, {} bytes -> OPS_ring_dump.json",
        dump.len()
    );

    session.bye().expect("clean close");
    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 4_000);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("# ops_plane: OK");
}
