//! Industrial-style telemetry: daily app-usage minutes under LDP.
//!
//! Run with: `cargo run --release --example app_usage_telemetry`
//!
//! The LDP deployments that motivate the paper (Google, Apple, Microsoft,
//! Snap) collect usage statistics from millions of devices. This example
//! models a fleet reporting "minutes of app usage today" in \[0, 1024) and
//! shows the analyses an aggregator actually runs on such data:
//!
//! * a histogram overview (point queries),
//! * engagement bands (range queries: casual / regular / heavy users),
//! * the full CDF and engagement percentiles,
//! * a comparison of the flat baseline against HaarHRR on the same
//!   population, illustrating Fact 1 (linear error growth) versus Eq. 3.

use ldp_range_queries::eval::{mse_exact, prefix_errors};
use ldp_range_queries::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let domain = 1024; // minutes, capped at ~17h
    let eps = Epsilon::new(1.1);
    let fleet = 4_000_000u64;

    // Usage time: mixture of a big casual mass near zero and a heavy-user
    // bump — modeled as a left-centered Cauchy.
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams {
            center_fraction: 0.08,
            scale_fraction: 0.12,
        }),
        domain,
        fleet,
        &mut rng,
    );

    // HaarHRR: each device sends log2(D) + 1 = 11 bits.
    let config = HaarConfig::new(domain, eps).expect("valid configuration");
    let mut server = HaarHrrServer::new(config).expect("server");
    server
        .absorb_population(dataset.counts(), &mut rng)
        .expect("population histogram matches domain");
    let haar = server.estimate();

    println!(
        "fleet of {fleet} devices, eps = {}, domain = {domain} minutes\n",
        eps.value()
    );

    println!("engagement band          truth    estimate");
    for (label, a, b) in [
        ("inactive   (0-5 min)   ", 0usize, 5usize),
        ("casual     (6-30 min)  ", 6, 30),
        ("regular    (31-120 min)", 31, 120),
        ("heavy      (121-480)   ", 121, 480),
        ("extreme    (481+)      ", 481, 1023),
    ] {
        println!(
            "{label}  {:>8.4}    {:>8.4}",
            dataset.true_range(a, b),
            haar.range(a, b)
        );
    }

    println!("\nengagement percentiles (minutes):");
    let est_freqs = haar.to_frequency_estimate();
    for phi in [0.5, 0.9, 0.99] {
        println!(
            "  p{:<4}  true {:>4} min   estimated {:>4} min",
            (phi * 100.0) as u32,
            dataset.true_quantile(phi),
            quantile(&est_freqs, phi),
        );
    }

    // Fact 1 in action: flat error grows with range length, tree error
    // does not.
    let flat_config = FlatConfig::new(domain, eps).expect("flat config");
    let mut flat_server = FlatServer::new(&flat_config).expect("flat server");
    flat_server
        .absorb_population(dataset.counts(), &mut rng)
        .expect("absorb");
    let flat = flat_server.estimate();

    let flat_err = prefix_errors(&flat, &dataset);
    let haar_err = prefix_errors(&est_freqs, &dataset);
    println!("\nMSE by range length (x1e6):   flat      HaarHRR");
    for r in [1usize, 16, 128, 512] {
        let wl = QueryWorkload::FixedLength { r };
        println!(
            "  r = {r:<4}                 {:>8.3}  {:>8.3}",
            mse_exact(&flat_err, wl) * 1e6,
            mse_exact(&haar_err, wl) * 1e6,
        );
    }
    println!("\n(flat error grows ~linearly in r; the wavelet stays flat — Fact 1 vs Eq. 3)");
}
