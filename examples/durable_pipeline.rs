//! Durability on one page: ingest through a write-ahead-logged service,
//! crash it (drop without shutdown), recover, and watch the recovered
//! median come back *bit-identical* to the pre-crash snapshot — then
//! checkpoint, crash again, and recover instantly from the checkpoint
//! with no replay.
//!
//! ```text
//! cargo run --release --example durable_pipeline
//! ```

use ldp_range_queries::prelude::*;
use ldp_range_queries::service::generate_stream;
use ldp_range_queries::service::net::WIRE_V1;
use ldp_range_queries::service::storage::{
    scratch_dir, DurableConfig, DurableService, FsyncPolicy, TailStatus,
};

fn main() {
    let domain = 256usize;
    let users = 60_000u64;
    let batch = 256usize;

    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    // A salary-like population concentrated in the middle of the domain.
    let counts: Vec<u64> = (0..domain)
        .map(|z| {
            let d = z.abs_diff(domain / 3) as u64;
            1_000 / (1 + d * d / 16)
        })
        .collect();
    let stream = generate_stream(&Dataset::from_counts(counts), users, 11, |value, rng| {
        client.report(value, rng).expect("in-domain value")
    });

    let dir = scratch_dir("durable-pipeline").expect("scratch dir");
    let durable_config = DurableConfig {
        num_shards: 4,
        fsync: FsyncPolicy::Always, // every ack survives power loss
        ..DurableConfig::default()
    };
    println!(
        "# durable_pipeline: {users} users, domain {domain}, WAL at {}",
        dir.display()
    );

    // 1. Ingest durably: each batch is absorbed all-or-nothing, logged as
    //    one CRC-framed record, and fsynced before the ack.
    let (service, _) =
        DurableService::open(&dir, &prototype, durable_config.clone()).expect("open");
    let mut lo = 0;
    while lo < stream.len() {
        let hi = (lo + batch).min(stream.len());
        service
            .ingest_batch(WIRE_V1, (hi - lo) as u64, stream.frame_span(lo, hi))
            .expect("durable ingest");
        lo = hi;
    }
    let pre_crash = service.refresh_snapshot().expect("refresh");
    let median = pre_crash.quantile(0.5);
    println!(
        "before crash: {} reports absorbed, median {median}",
        pre_crash.num_reports()
    );

    // 2. Crash: drop the service without shutdown or checkpoint. Nothing
    //    but the WAL survives.
    drop(service);
    println!(
        "crash! (process state gone; only {} remains)",
        dir.display()
    );

    // 3. Recover: replay the log. The state — not just the headline
    //    numbers, every estimate bit — must match.
    let (recovered, report) =
        DurableService::open(&dir, &prototype, durable_config.clone()).expect("recover");
    let snap = recovered.refresh_snapshot().expect("refresh");
    println!(
        "recovered: {} frames replayed from {} segments (tail: {})",
        report.frames_replayed,
        report.segments_scanned,
        match &report.tail {
            TailStatus::Clean => "clean".to_string(),
            TailStatus::Torn {
                segment, offset, ..
            } => format!("torn at segment {segment} offset {offset}"),
        },
    );
    assert_eq!(snap.num_reports(), pre_crash.num_reports());
    assert_eq!(snap.quantile(0.5), median);
    for z in 0..domain {
        assert_eq!(
            snap.point(z).to_bits(),
            pre_crash.point(z).to_bits(),
            "estimate differs at {z}"
        );
    }
    println!(
        "recovered median {} == pre-crash median {median} (all estimates bit-identical)",
        snap.quantile(0.5)
    );

    // 4. Checkpoint, crash again: the next recovery restores the
    //    serialized state directly and replays nothing.
    let ckpt = recovered.checkpoint().expect("checkpoint");
    drop(recovered);
    let (fast, report) = DurableService::open(&dir, &prototype, durable_config).expect("reopen");
    println!(
        "after checkpoint {ckpt}: reopen replayed {} records (snapshot restored directly)",
        report.records_replayed
    );
    assert_eq!(report.checkpoint_id, Some(ckpt));
    assert_eq!(report.records_replayed, 0);
    let snap = fast.refresh_snapshot().expect("refresh");
    assert_eq!(snap.quantile(0.5), median);
    drop(fast);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("done.");
}
