//! Quickstart: estimate range queries over a private population.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! A population of users each holds one private value in a discrete domain
//! (say, an age bucket). Each user locally perturbs her value under ε-LDP
//! and sends a single report; the untrusted aggregator reconstructs range
//! queries, the CDF and quantiles without ever seeing a raw value.

use ldp_range_queries::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // Domain: 256 buckets; privacy: the paper's default e^eps = 3.
    let domain = 256;
    let eps = Epsilon::from_exp(3.0);

    // Synthetic ground truth: the paper's Cauchy population (centered at
    // 0.4·D), 300k users.
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        300_000,
        &mut rng,
    );

    // --- The protocol, user by user -------------------------------------
    // Hierarchical histogram with fanout 4 and constrained inference: the
    // paper's recommended configuration for moderate epsilon.
    let config = HhConfig::new(domain, 4, eps).expect("valid configuration");
    let client = HhClient::new(config.clone()).expect("client");
    let mut server = HhServer::new(config).expect("server");

    // Here we expand the histogram back into individual users to show the
    // real per-user flow; `server.absorb_population` does the same thing
    // in aggregate when you already hold a histogram.
    let mut sent = 0u64;
    for (value, &count) in dataset.counts().iter().enumerate() {
        for _ in 0..count {
            let report = client.report(value, &mut rng).expect("value in domain");
            server.absorb(&report).expect("report matches");
            sent += 1;
        }
    }
    println!("collected {sent} eps-LDP reports (one per user)\n");

    // --- Aggregation and queries ----------------------------------------
    let estimate = server.estimate_consistent();

    println!("range query          truth     estimate");
    for (a, b) in [(96, 112), (0, 63), (128, 255), (100, 100)] {
        println!(
            "[{a:>3}, {b:>3}]       {:>8.4}     {:>8.4}",
            dataset.true_range(a, b),
            estimate.range(a, b),
        );
    }

    // Quantiles via binary search over prefix queries (paper §4.7).
    println!("\nquantile   true-index   estimated-index");
    for phi in [0.25, 0.5, 0.75] {
        println!(
            "{phi:>5}       {:>6}        {:>6}",
            dataset.true_quantile(phi),
            quantile(&estimate, phi),
        );
    }
}
