//! Private salary-distribution release: medians and deciles under LDP.
//!
//! Run with: `cargo run --release --example salary_quantiles`
//!
//! Salaries are exactly the kind of "financial status" data the paper's
//! introduction motivates. Each employee maps her salary into one of 2^16
//! buckets ($500 resolution up to ~$32.7M — generous tail) and reports
//! once under ε-LDP. The aggregator reconstructs deciles and answers
//! compensation-band questions, comparing the hierarchical and wavelet
//! mechanisms side by side (paper §4.7 / Figure 9).

use ldp_range_queries::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUCKET_DOLLARS: usize = 500;

fn bucket_to_salary(b: usize) -> usize {
    b * BUCKET_DOLLARS
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7_117);
    let domain = 1 << 16;
    let eps = Epsilon::new(1.1);
    let workforce = 8_000_000u64;

    // A right-skewed salary distribution: bulk around $55k with a long
    // tail (Cauchy centered low in the domain).
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams {
            center_fraction: 110.0 / domain as f64, // bucket 110 ≈ $55k
            scale_fraction: 60.0 / domain as f64,
        }),
        domain,
        workforce,
        &mut rng,
    );

    // Run both recommended mechanisms on the same population.
    let hh_config = HhConfig::new(domain, 4, eps).expect("HH config");
    let mut hh_server = HhServer::new(hh_config).expect("HH server");
    hh_server
        .absorb_population(dataset.counts(), &mut rng)
        .expect("absorb");
    let hh = hh_server.estimate_consistent().to_frequency_estimate();

    let haar_config = HaarConfig::new(domain, eps).expect("Haar config");
    let mut haar_server = HaarHrrServer::new(haar_config).expect("Haar server");
    haar_server
        .absorb_population(dataset.counts(), &mut rng)
        .expect("absorb");
    let haar = haar_server.estimate().to_frequency_estimate();

    println!(
        "{workforce} employees, $500 buckets, eps = {}\n",
        eps.value()
    );
    println!("decile      truth        HHc4         HaarHRR");
    for i in 1..=9u32 {
        let phi = f64::from(i) / 10.0;
        println!(
            "p{:<4}   ${:>9}   ${:>9}   ${:>9}",
            i * 10,
            bucket_to_salary(dataset.true_quantile(phi)),
            bucket_to_salary(quantile(&hh, phi)),
            bucket_to_salary(quantile(&haar, phi)),
        );
    }

    println!("\ncompensation bands           truth    HHc4     HaarHRR");
    for (label, lo, hi) in [
        ("under $40k             ", 0usize, 79usize),
        ("$40k - $80k            ", 80, 159),
        ("$80k - $160k           ", 160, 319),
        ("$160k - $1M            ", 320, 1999),
        ("above $1M              ", 2000, (1 << 16) - 1),
    ] {
        println!(
            "{label}  {:>7.4}  {:>7.4}  {:>7.4}",
            dataset.true_range(lo, hi),
            hh.range(lo, hi),
            haar.range(lo, hi),
        );
    }

    // Quantile error in the distributional sense (the paper's headline
    // Figure 9 finding: value errors appear where data is sparse, but the
    // *quantile* error stays tiny).
    println!("\nmedian check:");
    let true_median = dataset.true_quantile(0.5);
    for (name, est) in [("HHc4", &hh), ("HaarHRR", &haar)] {
        let found = quantile(est, 0.5);
        let realized = dataset.true_prefix(found);
        println!(
            "  {name:>8}: returned ${} which is the {:.4}-quantile (target 0.5, true median ${})",
            bucket_to_salary(found),
            realized,
            bucket_to_salary(true_median),
        );
    }
}
