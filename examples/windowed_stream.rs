//! Windowed streaming aggregation on one page: a population whose
//! distribution drifts over time reports continuously; a windowed service
//! seals epochs, retires the oldest by exact subtraction, and its
//! sliding-window median visibly tracks the drift that the all-time
//! aggregate blurs.
//!
//! ```text
//! cargo run --release --example windowed_stream
//! ```

use ldp_range_queries::prelude::*;
use ldp_range_queries::service::{generate_drifting_epochs, EpochRing, LdpService};

fn main() {
    let domain = 256usize;
    let epochs = 8usize;
    let window = 3usize;
    let users_per_epoch = 30_000u64;

    let config = HaarConfig::new(domain, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HaarHrrClient::new(config.clone()).expect("client");
    let prototype = HaarHrrServer::new(config).expect("server");

    // The population drifts: early epochs report values from the low end
    // of the domain, late epochs from the high end.
    let mut low = vec![0u64; domain];
    let mut high = vec![0u64; domain];
    for z in 0..domain / 4 {
        low[z] = 1;
        high[domain - 1 - z] = 1;
    }
    let streams = generate_drifting_epochs(
        &Dataset::from_counts(low),
        &Dataset::from_counts(high),
        epochs,
        users_per_epoch,
        7,
        |value, rng| client.report(value, rng).expect("in-domain value"),
    );

    // A 2-shard service whose shards each hold an epoch ring retaining
    // the last `window` sealed epochs.
    let service = LdpService::windowed(&prototype, 2, window).expect("valid window");
    println!("# windowed_stream: domain {domain}, {epochs} epochs × {users_per_epoch} users, window {window}");
    println!(
        "{:>6}  {:>14}  {:>15}  {:>13}",
        "epoch", "window median", "window [lo,hi]", "epochs covered"
    );
    for (e, stream) in streams.iter().enumerate() {
        for i in 0..stream.len() {
            // Frames carry the epoch id (wire v2); stale stragglers from
            // sealed epochs would be rejected, not folded in.
            service
                .submit_epoch_frame(stream.frame(i))
                .expect("current epoch");
        }
        service.seal_epoch().expect("seal");
        let snap = service
            .window_snapshot(window)
            .expect("sealed epochs exist");
        println!(
            "{e:>6}  {:>14}  [{:>5}, {:>6}]  {:>13}",
            snap.quantile(0.5),
            snap.first_epoch(),
            snap.last_epoch(),
            snap.epochs(),
        );
    }

    // The same machinery works without the service front: a single ring
    // with report-count epochs, windowed queries between absorbs.
    let mut ring = EpochRing::with_epoch_width(&prototype, window, users_per_epoch).expect("ring");
    for stream in &streams {
        for i in 0..stream.len() {
            let (epoch, report, _) = ldp_range_queries::service::decode_epoch_frame::<
                ldp_range_queries::ranges::HaarHrrReport,
            >(stream.frame(i))
            .expect("well-formed frame");
            let _ = epoch; // width-based sealing; tags not enforced here
            ring.absorb(&report).expect("absorb");
        }
    }
    let snap = ring.window_snapshot(window).expect("sealed epochs");
    println!(
        "\n# single-ring check: last-{window}-epoch median {} over {} reports",
        snap.quantile(0.5),
        snap.num_reports(),
    );
}
