//! Two-dimensional range queries: a private location heatmap (paper §6).
//!
//! Run with: `cargo run --release --example spatial_heatmap_2d`
//!
//! Each user holds one grid cell of a 64×64 city map. Users report under
//! ε-LDP through the 2-D hierarchical mechanism (crossed B-adic
//! decompositions); the aggregator then answers arbitrary rectangle
//! queries — district densities, marginals, a coarse heatmap — without
//! access to any individual location.

use ldp_range_queries::prelude::*;
use ldp_range_queries::ranges::{Hh2dConfig, Hh2dServer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

const SIDE: usize = 64;

/// Synthetic city: two population clusters (downtown + suburb) on a
/// uniform background.
fn synthesize_city(rng: &mut StdRng, users: u64) -> Vec<u64> {
    let mut counts = vec![0u64; SIDE * SIDE];
    for _ in 0..users {
        let (x, y) = if rng.random::<f64>() < 0.5 {
            // downtown: tight cluster near (16, 20)
            let x = (16.0 + 4.0 * gaussian(rng)).clamp(0.0, 63.0) as usize;
            let y = (20.0 + 4.0 * gaussian(rng)).clamp(0.0, 63.0) as usize;
            (x, y)
        } else if rng.random::<f64>() < 0.6 {
            // suburb: wider cluster near (44, 48)
            let x = (44.0 + 7.0 * gaussian(rng)).clamp(0.0, 63.0) as usize;
            let y = (48.0 + 7.0 * gaussian(rng)).clamp(0.0, 63.0) as usize;
            (x, y)
        } else {
            (rng.random_range(0..SIDE), rng.random_range(0..SIDE))
        };
        counts[x * SIDE + y] += 1;
    }
    counts
}

fn gaussian(rng: &mut StdRng) -> f64 {
    ldp_range_queries::oracle::binomial::standard_normal(rng)
}

fn true_rect(counts: &[u64], total: u64, x0: usize, x1: usize, y0: usize, y1: usize) -> f64 {
    let mut sum = 0u64;
    for x in x0..=x1 {
        for y in y0..=y1 {
            sum += counts[x * SIDE + y];
        }
    }
    sum as f64 / total as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(6464);
    let users = 2_000_000u64;
    let eps = Epsilon::new(1.1);

    let counts = synthesize_city(&mut rng, users);

    let config = Hh2dConfig::new(SIDE, 2, eps).expect("2-D config");
    println!(
        "64x64 grid, {} depth-pair grids, {users} users, eps = {}\n",
        config.num_grids(),
        eps.value()
    );
    let mut server = Hh2dServer::new(config).expect("server");
    server.absorb_population(&counts, &mut rng).expect("absorb");
    let est = server.estimate();

    println!("district                       truth    estimate");
    for (label, x0, x1, y0, y1) in [
        (
            "downtown  [8,24]x[12,28]   ",
            8usize,
            24usize,
            12usize,
            28usize,
        ),
        ("suburb    [36,52]x[40,56]  ", 36, 52, 40, 56),
        ("riverside [0,63]x[0,7]     ", 0, 63, 0, 7),
        ("west half [0,31]x[0,63]    ", 0, 31, 0, 63),
    ] {
        println!(
            "{label}  {:>7.4}   {:>7.4}",
            true_rect(&counts, users, x0, x1, y0, y1),
            est.rectangle(x0, x1, y0, y1),
        );
    }

    // Coarse 8×8 heatmap from 64 rectangle queries.
    println!("\nestimated density heatmap (8x8 blocks, % of population):");
    for bx in 0..8 {
        let mut row = String::new();
        for by in 0..8 {
            let v = est
                .rectangle(bx * 8, bx * 8 + 7, by * 8, by * 8 + 7)
                .max(0.0)
                * 100.0;
            row.push_str(&format!("{v:>6.2}"));
        }
        println!("{row}");
    }
    println!("\n(the two clusters should stand out around blocks (2,2) and (5,6))");
}
