//! Replication on one page: a durable leader streams its write-ahead
//! log to a hot-standby follower over loopback TCP while clients
//! ingest; the follower answers read queries from its own replica; then
//! the leader is killed and the follower is *promoted* — and because
//! the WAL ships raw wire frames and every mechanism's state is an
//! exact integer sufficient statistic, the promoted leader's median
//! (and every estimate bit behind it) is identical to the dead
//! leader's.
//!
//! ```text
//! cargo run --release --example replicated_pair
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ldp_range_queries::prelude::*;
use ldp_range_queries::ranges::HhReport;
use ldp_range_queries::service::net::{Hello, NetConfig, WIRE_V1};
use ldp_range_queries::service::storage::{
    scratch_dir, DurableConfig, DurableService, FsyncPolicy,
};
use ldp_range_queries::service::{generate_stream, FollowerService, LdpClient, LdpServer};

fn main() {
    let domain = 256usize;
    let users = 40_000u64;
    let batch = 256usize;

    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    // A salary-like population concentrated around a third of the domain.
    let counts: Vec<u64> = (0..domain)
        .map(|z| {
            let d = z.abs_diff(domain / 3) as u64;
            1_000 / (1 + d * d / 16)
        })
        .collect();
    let stream = generate_stream(&Dataset::from_counts(counts), users, 11, |value, rng| {
        client.report(value, rng).expect("in-domain value")
    });

    let durable_config = DurableConfig {
        num_shards: 4,
        fsync: FsyncPolicy::Always,
        ..DurableConfig::default()
    };

    // 1. The leader: a durable service behind a socket.
    let leader_dir = scratch_dir("replicated-pair-leader").expect("scratch dir");
    let (leader, _) =
        DurableService::open(&leader_dir, &prototype, durable_config.clone()).expect("open leader");
    let leader = Arc::new(leader);
    let leader_server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&leader), NetConfig::default())
            .expect("bind leader");
    let leader_addr = format!("{}", leader_server.local_addr());
    println!(
        "# replicated_pair: leader on {leader_addr}, WAL at {}",
        leader_dir.display()
    );

    // 2. The follower: its own durable log, subscribed to the leader's
    //    record stream from position 0.
    let follower_dir = scratch_dir("replicated-pair-follower").expect("scratch dir");
    let (follower, _) = FollowerService::open(
        &follower_dir,
        &prototype,
        &leader_addr,
        durable_config.clone(),
    )
    .expect("open follower");
    println!(
        "follower subscribed from position 0, replica log at {}",
        follower_dir.display()
    );

    // 3. Ingest through the leader while the stream ships every acked
    //    record to the standby.
    let mut session =
        LdpClient::connect(&*leader_addr, Hello::plain::<HhReport>()).expect("connect");
    let mut records = 0u64;
    let mut lo = 0;
    while lo < stream.len() {
        let hi = (lo + batch).min(stream.len());
        session
            .send_batch((hi - lo) as u64, stream.frame_span(lo, hi))
            .expect("acked batch");
        records += 1;
        lo = hi;
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while follower.position() < records {
        assert!(
            Instant::now() < deadline,
            "follower stalled at {} of {records}: {:?}",
            follower.position(),
            follower.last_error()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "ingested {users} reports in {records} WAL records; follower caught up at position {}",
        follower.position()
    );

    // 4. The standby is a live read replica: serve it read-only and
    //    compare a query against the leader, bit for bit.
    let replica_server = LdpServer::bind_replica(
        "127.0.0.1:0",
        Arc::clone(follower.service()),
        NetConfig::default(),
    )
    .expect("bind replica");
    let mut replica_session =
        LdpClient::connect(replica_server.local_addr(), Hello::plain::<HhReport>())
            .expect("connect replica");
    let on_leader = session.quantile(0.5).expect("leader median");
    let on_replica = replica_session.quantile(0.5).expect("replica median");
    println!(
        "median over the socket — leader: {:?}, replica: {:?}",
        on_leader.result, on_replica.result
    );
    assert_eq!(on_leader.result, on_replica.result, "replica diverged");
    session.bye().expect("leader bye");
    replica_session.bye().expect("replica bye");
    let _ = replica_server.shutdown();

    // 5. Kill the leader.
    let leader_snapshot = leader.refresh_snapshot().expect("leader snapshot");
    let leader_median = leader_snapshot.quantile(0.5);
    let _ = leader_server.shutdown();
    drop(leader);
    println!("leader killed (median at death: {leader_median})");

    // 6. Promote the follower: replication stops, its log is fsynced,
    //    and it becomes a normal durable leader over the replicated log.
    let promoted = follower.promote().expect("promote");
    let snap = promoted.refresh_snapshot().expect("promoted snapshot");
    let median = snap.quantile(0.5);
    println!(
        "promoted follower: {} reports, median {median}",
        snap.num_reports()
    );
    assert_eq!(snap.num_reports(), leader_snapshot.num_reports());
    assert_eq!(median, leader_median, "promotion changed the median");
    let a = leader_snapshot.estimate().frequencies();
    let b = snap.estimate().frequencies();
    assert!(
        a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "promoted estimates are not bit-identical"
    );
    println!("promoted state is bit-identical to the dead leader's");

    // 7. The promoted service is a real leader: it keeps ingesting into
    //    its own (replicated) log.
    promoted
        .ingest_batch(WIRE_V1, 16, stream.frame_span(0, 16))
        .expect("post-promotion ingest");
    println!(
        "post-promotion ingest works: {} reports",
        promoted.refresh_snapshot().expect("refresh").num_reports()
    );

    drop(promoted);
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
