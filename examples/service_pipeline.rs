//! The full aggregation-service pipeline on one page:
//! ingest → merge → snapshot → query.
//!
//! A synthetic population reports through the hierarchical-histogram
//! mechanism; reports travel as wire frames, a sharded aggregator decodes
//! and absorbs them in parallel, and a frozen snapshot serves range,
//! prefix and quantile queries while ingestion could keep running.
//!
//! ```text
//! cargo run --release --example service_pipeline
//! ```

use ldp_range_queries::prelude::*;
use ldp_range_queries::service::{LdpService, RangeSnapshot, ShardedAggregator};
use ldp_range_queries::workloads::DistributionKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let domain = 1024;
    let users = 200_000u64;
    let shards = 4;

    // A skewed synthetic population (the paper's truncated-Cauchy family).
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        users,
        &mut rng,
    );

    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    // 1. Clients encode their LDP reports into wire frames.
    let stream = ldp_range_queries::service::generate_stream(&dataset, users, 7, |value, rng| {
        client.report(value, rng).expect("in-domain value")
    });
    println!(
        "encoded {} reports into {:.1} MiB ({:.1} bytes/report)",
        stream.len(),
        stream.total_bytes() as f64 / (1024.0 * 1024.0),
        stream.mean_frame_bytes(),
    );

    // 2. A shard pool decodes + absorbs the stream in parallel, then
    //    merges — exactly equal to single-threaded absorption.
    let mut pool = ShardedAggregator::new(&prototype, shards).expect("shards > 0");
    let started = std::time::Instant::now();
    pool.ingest_encoded(&stream).expect("well-formed stream");
    let merged = pool.merged().expect("merge");
    println!(
        "ingested across {shards} shards in {:.2?} ({:.0} reports/sec)",
        started.elapsed(),
        stream.len() as f64 / started.elapsed().as_secs_f64(),
    );

    // 3. Freeze a snapshot and answer queries against ground truth.
    let snap = RangeSnapshot::freeze(&merged, 1);
    println!(
        "\n{:>22}  {:>10}  {:>10}  {:>8}",
        "query", "estimate", "truth", "error"
    );
    for (a, b) in [(0, domain - 1), (128, 383), (200, 260), (0, 50)] {
        let est = snap.range(a, b);
        let truth = dataset.true_range(a, b);
        println!(
            "{:>22}  {est:>10.4}  {truth:>10.4}  {:>8.4}",
            format!("R[{a},{b}]"),
            (est - truth).abs()
        );
    }
    for phi in [0.25, 0.5, 0.75] {
        let est = snap.quantile(phi);
        let truth = dataset.true_quantile(phi);
        println!(
            "{:>22}  {est:>10}  {truth:>10}  {:>8}",
            format!("quantile({phi})"),
            est.abs_diff(truth)
        );
    }

    // 4. The same machinery behind the live service front: concurrent
    //    submitters + snapshot refresh.
    let service = LdpService::new(&prototype, shards).expect("shards > 0");
    std::thread::scope(|scope| {
        for w in 0..shards {
            let service = &service;
            let client = &client;
            let dataset = &dataset;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + w as u64);
                let sampler = ldp_range_queries::service::ValueSampler::new(dataset);
                for _ in 0..5_000 {
                    let v = sampler.draw(&mut rng);
                    let report = client.report(v, &mut rng).expect("in-domain");
                    service.submit(&report).expect("absorb");
                }
            });
        }
    });
    let live = service.refresh_snapshot().expect("refresh");
    println!(
        "\nlive service: {} reports over {} shards, snapshot v{}, R[128,383] = {:.4}",
        live.num_reports(),
        service.num_shards(),
        live.version(),
        live.range(128, 383),
    );
}
