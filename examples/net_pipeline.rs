//! The network tier on one page: an `LdpServer` on loopback TCP absorbs
//! epoch-tagged reports from several concurrent client sessions, seals
//! epochs over the wire, answers sliding-window queries mid-ingest, and
//! drains gracefully — and because every mechanism's state is an exact
//! integer sufficient statistic, the socket adds *transport, not
//! semantics*: the final state is bit-identical to in-process
//! submission.
//!
//! ```text
//! cargo run --release --example net_pipeline
//! ```

use std::sync::Arc;

use ldp_range_queries::prelude::*;
use ldp_range_queries::ranges::HaarHrrReport;
use ldp_range_queries::service::net::{Hello, NetConfig, Query, QueryOp};
use ldp_range_queries::service::{generate_drifting_epochs, LdpClient, LdpServer, LdpService};

fn main() {
    let domain = 256usize;
    let epochs = 6usize;
    let window = 2usize;
    let users_per_epoch = 20_000u64;
    let sessions = 4usize;

    let config = HaarConfig::new(domain, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HaarHrrClient::new(config.clone()).expect("client");
    let prototype = HaarHrrServer::new(config).expect("server");

    // A drifting population: early epochs report from the low quarter of
    // the domain, late epochs from the high quarter.
    let mut low = vec![0u64; domain];
    let mut high = vec![0u64; domain];
    for z in 0..domain / 4 {
        low[z] = 1;
        high[domain - 1 - z] = 1;
    }
    let streams = generate_drifting_epochs(
        &Dataset::from_counts(low),
        &Dataset::from_counts(high),
        epochs,
        users_per_epoch,
        11,
        |value, rng| client.report(value, rng).expect("in-domain value"),
    );

    // The server: a 4-shard windowed service behind a loopback socket.
    let service = Arc::new(LdpService::windowed(&prototype, 4, window).expect("valid window"));
    let server =
        LdpServer::bind_windowed("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
            .expect("bind loopback");
    let addr = server.local_addr();
    println!("# net_pipeline: LdpServer on {addr}, {sessions} reporting sessions");
    println!(
        "{:>6}  {:>10}  {:>14}  {:>15}",
        "epoch", "acked", "window median", "epochs covered"
    );

    // One control session drives seals and queries; per epoch, the
    // reports fan out over several concurrent client sessions.
    let mut control =
        LdpClient::connect(addr, Hello::windowed::<HaarHrrReport>()).expect("connect");
    for (e, stream) in streams.iter().enumerate() {
        let acked: u64 = std::thread::scope(|scope| {
            (0..sessions)
                .map(|s| {
                    let stream = &stream;
                    scope.spawn(move || {
                        let mut session =
                            LdpClient::connect(addr, Hello::windowed::<HaarHrrReport>())
                                .expect("connect");
                        // Each session ships an interleaved slice of the
                        // epoch's frames in batched REPORT messages.
                        let mut batch = ldp_range_queries::service::EncodedStream::new();
                        for i in (s..stream.len()).step_by(sessions) {
                            batch.push_raw(stream.frame(i));
                        }
                        let acked = session.send_stream(&batch, 512).expect("clean stream");
                        session.bye().expect("clean close");
                        acked
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("session thread"))
                .sum()
        });
        let sealed = control.seal_epoch().expect("seal over the wire");
        assert_eq!(sealed, e as u64);
        let reply = control
            .query(Query {
                op: QueryOp::Quantile { phi: 0.5 },
                window: Some(window.min(e + 1) as u64),
            })
            .expect("windowed quantile");
        let (first, last) = reply.window.expect("windowed reply carries bounds");
        println!(
            "{e:>6}  {acked:>10}  {:>14}  [{first}, {last}]",
            reply.index()
        );
    }

    // Graceful shutdown: drain, seal the open epoch, join every thread.
    let stats = server.shutdown();
    println!(
        "\n# drained: {} sessions, {} frames absorbed, {} rejected, num_reports {}",
        stats.sessions, stats.frames_absorbed, stats.frames_rejected, stats.num_reports
    );
    assert_eq!(
        stats.frames_absorbed,
        epochs as u64 * users_per_epoch,
        "drain must account for every acked frame"
    );
    let median = stats.final_snapshot.quantile(0.5);
    println!(
        "# final trailing-window snapshot: version {}, median {median} \
         (population drifted to the high quarter: ≥ {})",
        stats.final_snapshot.version(),
        3 * domain / 4
    );
    assert!(median >= domain / 2, "window should track the drift");
}
